"""Workload definitions shared by the test suite and the benchmarks.

Each :class:`Workload` names a corpus program (``examples/corpus/*.m``),
how to build its input workspace at a given scale, and which workspace
variables are its outputs.  The registry covers every experiment in the
paper's evaluation (§5) plus the supporting corpus.

The paper's absolute problem sizes (800×600 images, 1500×1500 matrices)
assume MATLAB's interpreter; our baseline interpreter is a Python tree
walker, so each workload carries a ``default`` scale chosen to keep the
loop version in benchmarkable territory, and the harness reports that
scaling alongside the measured speedups (see EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

import numpy as np


def find_corpus(start: Optional[Path] = None) -> Path:
    """Locate ``examples/corpus`` by walking up from ``start`` (or this
    file, or the working directory)."""
    candidates = []
    if start is not None:
        candidates.append(Path(start))
    candidates.append(Path(__file__).resolve())
    candidates.append(Path(os.getcwd()))
    for origin in candidates:
        node = origin if origin.is_dir() else origin.parent
        while True:
            corpus = node / "examples" / "corpus"
            if corpus.is_dir():
                return corpus
            if node.parent == node:
                break
            node = node.parent
    raise FileNotFoundError("examples/corpus not found; pass an explicit "
                            "path")


def _fortran(array: np.ndarray) -> np.ndarray:
    return np.asfortranarray(np.array(array, dtype=float))


@dataclass
class Workload:
    """One benchmarkable program."""

    name: str
    filename: str
    outputs: tuple[str, ...]
    make_env: Callable[[dict, np.random.Generator], dict]
    #: Named scale presets: "default" is used by benchmarks, "tiny" by
    #: equivalence tests.
    scales: dict[str, dict] = field(default_factory=dict)
    #: Where the paper reports this workload (experiment id), if anywhere.
    experiment: Optional[str] = None

    def source(self, corpus: Optional[Path] = None) -> str:
        directory = corpus if corpus is not None else find_corpus()
        return (directory / self.filename).read_text()

    def env(self, scale: str = "default",
            seed: int = 12345) -> dict:
        rng = np.random.default_rng(seed)
        params = self.scales.get(scale, self.scales.get("default", {}))
        return self.make_env(dict(params), rng)


# ---------------------------------------------------------------------------
# Environment builders
# ---------------------------------------------------------------------------


def _vector_env(params, rng):
    n = params["n"]
    return {
        "x": _fortran(rng.random((n, 1))),
        "y": _fortran(rng.random((n, 1))),
        "z": _fortran(np.zeros((n, 1))),
        "a": 1.5,
        "n": float(n),
    }


def _row_col_env(params, rng):
    n = params["n"]
    return {
        "x": _fortran(rng.random((n, 1))),
        "y": _fortran(rng.random((1, n))),
        "z": _fortran(np.zeros((n, 1))),
        "n": float(n),
    }


def _transpose_env(params, rng):
    m, n = params["m"], params["n"]
    return {
        "A": _fortran(np.zeros((m, n))),
        "B": _fortran(rng.random((n, m))),
        "C": _fortran(rng.random((m, n))),
        "m": float(m),
        "n": float(n),
    }


def _dot_env(params, rng):
    n, k = params["n"], params["k"]
    return {
        "a": _fortran(np.zeros((1, n))),
        "X": _fortran(rng.random((n, k))),
        "Y": _fortran(rng.random((k, n))),
        "n": float(n),
    }


def _broadcast_env(params, rng):
    m, n = params["m"], params["n"]
    return {
        "A": _fortran(np.zeros((m, n))),
        "B": _fortran(rng.random((m, n))),
        "C": _fortran(rng.random((m, 1))),
        "w": _fortran(rng.random((m, 1))),
        "m": float(m),
        "n": float(n),
    }


def _diag_env(params, rng):
    n = params["n"]
    return {
        "a": _fortran(np.zeros((1, n))),
        "A": _fortran(rng.random((n, n))),
        "b": _fortran(rng.random((1, n))),
        "n": float(n),
    }


def _histeq_env(params, rng):
    rows, cols = params["rows"], params["cols"]
    image = np.floor(rng.random((rows, cols)) * 256)
    return {"im": _fortran(image)}


def _composite_env(params, rng):
    size = params["size"]  # must cover indices up to 31 in the program
    return {
        "A": _fortran(rng.random((size, size))),
        "B": _fortran(rng.random((size, size))),
        "C": _fortran(rng.random((size, size))),
        "D": _fortran(rng.random((size, size))),
        "a": _fortran(rng.random((1, 4 * size))),
    }


def _triangular_env(params, rng):
    i, p = params["i"], params["p"]
    return {
        "X": _fortran(rng.random((i + 2, p))),
        "L": _fortran(rng.random((i + 2, i + 2))),
        "i": float(i),
        "p": float(p),
    }


def _quadratic_env(params, rng):
    big_n = params["N"]
    return {
        "phi": _fortran(rng.random((3, 1))),
        "a": _fortran(rng.random((big_n, big_n))),
        "x_se": _fortran(rng.random((big_n, 1))),
        "f": _fortran(rng.random((big_n, 1))),
        "k": 2.0,
        "N": float(big_n),
    }


def _quad_nest_env(params, rng):
    n = params["n"]
    return {
        "y": _fortran(rng.random((n, 1))),
        "x": _fortran(rng.random((n, 1))),
        "A": _fortran(rng.random((n, n))),
        "B": _fortran(rng.random((n, n))),
        "C": _fortran(rng.random((n, n))),
        "n": float(n),
    }


def _reduction_env(params, rng):
    n = params["n"]
    return {"x": _fortran(rng.random((n, 1))), "n": float(n)}


def _matvec_env(params, rng):
    n, m = params["n"], params["m"]
    return {
        "y": _fortran(np.zeros((n, 1))),
        "A": _fortran(rng.random((n, m))),
        "x": _fortran(rng.random((m, 1))),
        "n": float(n),
        "m": float(m),
    }


def _recurrence_env(params, rng):
    return {"n": float(params["n"])}


def _mixed_env(params, rng):
    n = params["n"]
    return {"x": _fortran(rng.random((1, n))), "n": float(n)}


def _threshold_env(params, rng):
    rows, cols = params["rows"], params["cols"]
    return {
        "im": _fortran(np.floor(rng.random((rows, cols)) * 256)),
        "bw": _fortran(np.zeros((rows, cols))),
        "t": 128.0,
    }


def _outer_env(params, rng):
    m, n = params["m"], params["n"]
    return {
        "P": _fortran(np.zeros((m, n))),
        "u": _fortran(rng.random((m, 1))),
        "v": _fortran(rng.random((1, n))),
        "m": float(m),
        "n": float(n),
    }


def _convolution_env(params, rng):
    rows, cols = params["rows"], params["cols"]
    return {
        "im": _fortran(rng.random((rows, cols))),
        "out": _fortran(np.zeros((rows - 2, cols - 2))),
        "k": _fortran(rng.random((3, 3))),
    }


def _column_scale_env(params, rng):
    m, n = params["m"], params["n"]
    return {
        "A": _fortran(np.zeros((m, n))),
        "B": _fortran(rng.random((m, n))),
        "c": _fortran(rng.random((n, 1))),
        "n": float(n),
    }


def _clamp_env(params, rng):
    n = params["n"]
    return {
        "x": _fortran(rng.random((n, 1)) * 4 - 2),
        "y": _fortran(np.zeros((n, 1))),
        "lo": -1.0,
        "hi": 1.0,
        "n": float(n),
    }


def _fir_env(params, rng):
    n, taps = params["n"], params["taps"]
    return {
        "x": _fortran(rng.random((n, 1))),
        "y": _fortran(np.zeros((n - taps + 1, 1))),
        "h": _fortran(rng.random((taps, 1))),
        "taps": float(taps),
    }


def _jacobi_env(params, rng):
    rows, cols, steps = params["rows"], params["cols"], params["steps"]
    grid = np.zeros((rows, cols))
    grid[0, :] = 1.0   # hot top boundary
    return {"U": _fortran(grid), "Uold": _fortran(np.zeros((rows, cols))),
            "steps": float(steps)}


def _power_env(params, rng):
    n = params["n"]
    return {
        "x": _fortran(rng.random((n, 1))),
        "y": _fortran(np.zeros((n, 1))),
        "n": float(n),
    }


def _empty_env(params, rng):
    """For the self-contained inference corpus (``inf_*.m``): every
    input is initialized inside the program itself, so the workspace
    starts empty and the shape engine can recover all dims without the
    ``%!`` line."""
    return {}


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------

WORKLOADS: dict[str, Workload] = {}


def _register(workload: Workload) -> None:
    WORKLOADS[workload.name] = workload


_register(Workload(
    "scale-shift", "scale_shift.m", ("y",), _vector_env,
    {"tiny": {"n": 17}, "default": {"n": 4000}}))
_register(Workload(
    "saxpy", "saxpy.m", ("z",), _vector_env,
    {"tiny": {"n": 13}, "default": {"n": 4000}}))
_register(Workload(
    "row-col-add", "row_col_add.m", ("z",), _row_col_env,
    {"tiny": {"n": 11}, "default": {"n": 4000}}))
_register(Workload(
    "transpose-add", "transpose_add.m", ("A",), _transpose_env,
    {"tiny": {"m": 5, "n": 7}, "default": {"m": 60, "n": 70}},
    experiment="section-2.2"))
_register(Workload(
    "dot-products", "dot_products.m", ("a",), _dot_env,
    {"tiny": {"n": 6, "k": 5}, "default": {"n": 120, "k": 80}},
    experiment="table-2-pattern-1"))
_register(Workload(
    "column-broadcast", "column_broadcast.m", ("A",), _broadcast_env,
    {"tiny": {"m": 5, "n": 4}, "default": {"m": 70, "n": 60}},
    experiment="table-2-pattern-2"))
_register(Workload(
    "diagonal-scale", "diagonal_scale.m", ("a",), _diag_env,
    {"tiny": {"n": 7}, "default": {"n": 2500}},
    experiment="table-2-pattern-3"))
_register(Workload(
    "histeq", "histeq.m", ("im2", "heq"), _histeq_env,
    {"tiny": {"rows": 12, "cols": 9},
     "default": {"rows": 80, "cols": 60},
     "paper": {"rows": 800, "cols": 600}},
    experiment="figure-3"))
_register(Workload(
    "composite", "composite.m", ("A", "B"), _composite_env,
    {"tiny": {"size": 32}, "default": {"size": 32}},
    experiment="figure-4"))
_register(Workload(
    "triangular-update", "triangular_update.m", ("X",), _triangular_env,
    {"tiny": {"i": 5, "p": 8},
     "default": {"i": 50, "p": 500},
     "paper": {"i": 500, "p": 5000}},
    experiment="table-3-row-1"))
_register(Workload(
    "quadratic-form", "quadratic_form.m", ("phi",), _quadratic_env,
    {"tiny": {"N": 6},
     "default": {"N": 100},
     "paper": {"N": 1000}},
    experiment="table-3-row-2"))
_register(Workload(
    "quad-nest", "quad_nest.m", ("y",), _quad_nest_env,
    {"tiny": {"n": 4},
     "default": {"n": 12},
     "paper": {"n": 40}},
    experiment="table-3-row-3"))
_register(Workload(
    "running-sum", "running_sum.m", ("s",), _reduction_env,
    {"tiny": {"n": 19}, "default": {"n": 5000}}))
_register(Workload(
    "matvec", "matvec.m", ("y",), _matvec_env,
    {"tiny": {"n": 6, "m": 5}, "default": {"n": 80, "m": 70}}))
_register(Workload(
    "recurrence", "recurrence.m", ("a",), _recurrence_env,
    {"tiny": {"n": 9}, "default": {"n": 2000}}))
_register(Workload(
    "mixed", "mixed.m", ("a", "b"), _mixed_env,
    {"tiny": {"n": 9}, "default": {"n": 2000}}))
_register(Workload(
    "threshold", "threshold.m", ("bw",), _threshold_env,
    {"tiny": {"rows": 8, "cols": 6}, "default": {"rows": 70, "cols": 60}}))
_register(Workload(
    "normalize-rows", "normalize_rows.m", ("B",), _broadcast_env,
    {"tiny": {"m": 5, "n": 4}, "default": {"m": 70, "n": 60}}))
_register(Workload(
    "outer-product", "outer_product.m", ("P",), _outer_env,
    {"tiny": {"m": 5, "n": 4}, "default": {"m": 70, "n": 60}}))
_register(Workload(
    "power-series", "power_series.m", ("y",), _power_env,
    {"tiny": {"n": 15}, "default": {"n": 3000}}))
_register(Workload(
    "convolution", "convolution.m", ("out",), _convolution_env,
    {"tiny": {"rows": 8, "cols": 7}, "default": {"rows": 50, "cols": 40}}))
_register(Workload(
    "column-scale", "column_scale.m", ("A",), _column_scale_env,
    {"tiny": {"m": 5, "n": 4}, "default": {"m": 80, "n": 60}}))
_register(Workload(
    "clamp", "clamp.m", ("y",), _clamp_env,
    {"tiny": {"n": 11}, "default": {"n": 3000}}))
_register(Workload(
    "fir-filter", "fir_filter.m", ("y",), _fir_env,
    {"tiny": {"n": 12, "taps": 3}, "default": {"n": 400, "taps": 8}}))
_register(Workload(
    "jacobi", "jacobi.m", ("U",), _jacobi_env,
    {"tiny": {"rows": 7, "cols": 6, "steps": 3},
     "default": {"rows": 30, "cols": 30, "steps": 15}}))

#: The self-contained inference corpus: each program initializes its
#: own inputs (literals, zeros/ones/linspace/colon), so stripping the
#: ``%!`` line leaves the flow-sensitive engine enough information to
#: vectorize it byte-identically.  ``(name, outputs)`` pairs.
_INFERENCE_CORPUS = [
    ("inf-saxpy", ("z",)),
    ("inf-column-scale", ("z",)),
    ("inf-power-series", ("y",)),
    ("inf-dotprod", ("a",)),
    ("inf-matvec", ("y",)),
    ("inf-outer", ("P",)),
    ("inf-threshold", ("bw",)),
    ("inf-reduction", ("s",)),
    ("inf-clamp", ("y",)),
    ("inf-broadcast", ("A",)),
    ("inf-diagonal", ("d",)),
    ("inf-strided", ("z",)),
    ("inf-transpose-add", ("A",)),
    ("inf-scale-shift", ("y",)),
    ("inf-masked-sum", ("y",)),
    ("inf-interproc", ("z",)),
]

for _name, _outputs in _INFERENCE_CORPUS:
    _register(Workload(
        _name, _name.replace("-", "_") + ".m", _outputs, _empty_env,
        {"tiny": {}, "default": {}}))


def workload(name: str) -> Workload:
    return WORKLOADS[name]


def all_workloads() -> list[Workload]:
    return list(WORKLOADS.values())
