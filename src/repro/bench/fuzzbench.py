"""Fuzz throughput as a tracked benchmark metric.

The differential oracle is the safety net every perf/refactor PR runs
against, so its own throughput (programs/sec oracled end-to-end:
generate → interpret → vectorize → interpret → NumPy ×2 → compare)
matters.  This module measures it the same way the harness measures
workload speedups, and renders a row alongside the paper-style tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fuzz.campaign import run_campaign


@dataclass
class FuzzThroughput:
    """One fuzz-throughput measurement."""

    programs: int
    seed: int
    elapsed: float
    mismatches: int

    @property
    def programs_per_sec(self) -> float:
        if self.elapsed <= 0:
            return float("inf")
        return self.programs / self.elapsed


def measure_fuzz_throughput(n: int = 50, seed: int = 0) -> FuzzThroughput:
    """Oracle ``n`` generated programs and report the rate."""
    result = run_campaign(n, seed=seed)
    return FuzzThroughput(programs=result.total, seed=seed,
                          elapsed=result.elapsed,
                          mismatches=len(result.mismatches))


def format_fuzz_row(measurement: FuzzThroughput) -> str:
    """Render a measurement in the harness's table style."""
    status = ("ok" if measurement.mismatches == 0
              else f"{measurement.mismatches} MISMATCH(ES)")
    return (f"{'fuzz-oracle':<20} {'n=' + str(measurement.programs):<26} "
            f"{measurement.elapsed:>14.4f} "
            f"{measurement.programs_per_sec:>14.1f}/s "
            f"{status:>12}")
