"""Service benchmarks: caching, batch, serving, and shard scaling.

Four questions the compilation service must answer with numbers:

1. How much does the content-addressed cache buy?  ``measure_cache_speedup``
   times cold compiles (fresh service per run) against warm compiles
   (repeat requests against one service) for a representative corpus
   program.  The acceptance bar is warm ≥ 10x faster than cold.

2. How does ``mvec batch`` compare to invoking the compiler once per
   file?  Each configuration runs in a *fresh subprocess* so no run
   inherits another's in-memory cache (forked pool workers share the
   parent's ``_worker_services``, which would otherwise skew the
   numbers).  The baseline is one ``repro.cli`` process per corpus
   file — the workflow ``mvec batch`` replaces — so the batch numbers
   include exactly one interpreter startup instead of twenty-five.
   Note: on a single-core host the ``workers=4`` configuration cannot
   beat ``workers=1`` on CPU-bound compiles; the pool still wins on
   multi-core CI, and both numbers are recorded.

3. How do the two HTTP front ends compare under concurrent load?
   ``measure_serving_throughput`` fires the same warm ``/v1/vectorize``
   request at the threaded server and the asyncio server from N client
   threads and reports requests/second for each.

4. Does cache sharding scale?  ``measure_shard_scaling`` drives
   durable writes into a disk-backed cache from several threads —
   every put serializes, writes and fsyncs its entry file under the
   owning shard's lock — for 1 shard (one global lock, every fsync
   serialized) vs N shards (up to N fsyncs in flight), and verifies
   the sharded and unsharded caches produce **identical artifacts**
   for the same compile.

``python -m repro.bench.servicebench`` writes ``BENCH_service_v2.json``
(items 1–4); ``--v1`` writes the original ``BENCH_service.json``
payload (items 1–2 only).
"""

from __future__ import annotations

import json
import os
import statistics
import subprocess
import sys
import threading
import time
from pathlib import Path

from ..service.cache import CompilationCache
from ..service.compiler import CompilationService

REPO_ROOT = Path(__file__).resolve().parents[3]
CORPUS_DIR = REPO_ROOT / "examples" / "corpus"

# A mid-sized corpus program: one vectorizable loop plus surrounding
# scalar statements, representative of the serving workload.
DEFAULT_SOURCE = """\
%! x(*,1) y(*,1) n(1)
x = (1:64)';
n = 64;
for i=1:n
  y(i) = 2*x(i) + 1;
end
"""


def measure_cache_speedup(source: str = DEFAULT_SOURCE,
                          cold_runs: int = 5,
                          warm_runs: int = 50) -> dict:
    """Time cold (fresh service) vs warm (cache hit) compiles."""
    cold = []
    for _ in range(cold_runs):
        service = CompilationService(CompilationCache(capacity=8))
        start = time.perf_counter()
        result = service.compile(source)
        cold.append(time.perf_counter() - start)
        if not result.ok:
            raise RuntimeError(f"benchmark program failed: {result.error}")

    service = CompilationService(CompilationCache(capacity=8))
    service.compile(source)
    warm = []
    for _ in range(warm_runs):
        start = time.perf_counter()
        result = service.compile(source)
        warm.append(time.perf_counter() - start)
        if not result.cached:
            raise RuntimeError("warm run missed the cache")

    cold_mean = statistics.fmean(cold)
    warm_mean = statistics.fmean(warm)
    return {
        "cold_runs": cold_runs,
        "warm_runs": warm_runs,
        "cold_mean_s": cold_mean,
        "cold_min_s": min(cold),
        "warm_mean_s": warm_mean,
        "warm_min_s": min(warm),
        "speedup": cold_mean / warm_mean if warm_mean > 0 else float("inf"),
    }


def _child_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    return env


_BATCH_CHILD = """\
import sys, time
from repro.service.compiler import compile_many, read_sources
paths = sys.argv[2:]
pairs = read_sources(paths)
start = time.perf_counter()
results = compile_many(pairs, workers=int(sys.argv[1]))
elapsed = time.perf_counter() - start
bad = [r.name for r in results if not r.ok]
if bad:
    raise SystemExit(f"batch failures: {bad}")
print(elapsed)
"""


def _time_batch_child(paths: list[Path], workers: int) -> float:
    """Run ``compile_many`` in a fresh interpreter; return compile time."""
    proc = subprocess.run(
        [sys.executable, "-c", _BATCH_CHILD, str(workers),
         *map(str, paths)],
        capture_output=True, text=True, env=_child_env(), check=True)
    return float(proc.stdout.strip().splitlines()[-1])


def _time_per_file_processes(paths: list[Path]) -> float:
    """One ``repro.cli`` process per file — the pre-batch workflow."""
    env = _child_env()
    start = time.perf_counter()
    for path in paths:
        subprocess.run([sys.executable, "-m", "repro.cli", str(path)],
                       stdout=subprocess.DEVNULL, env=env, check=True)
    return time.perf_counter() - start


def measure_batch_throughput(corpus_dir: Path = CORPUS_DIR,
                             workers: tuple[int, ...] = (1, 4)) -> dict:
    """Batch-compile the corpus under each configuration, cold every time."""
    paths = sorted(corpus_dir.glob("*.m"))
    if not paths:
        raise RuntimeError(f"no corpus programs under {corpus_dir}")

    per_file = _time_per_file_processes(paths)
    configs = {f"batch_workers_{n}_s": _time_batch_child(paths, n)
               for n in workers}
    best = min(configs.values())
    return {
        "files": len(paths),
        "cpu_count": os.cpu_count(),
        "per_file_processes_s": per_file,
        **configs,
        "batch_speedup_vs_per_file": per_file / best if best > 0 else
        float("inf"),
    }


def run_service_bench() -> dict:
    """Run the v1 measurements and return the BENCH_service payload."""
    return {
        "benchmark": "service",
        "cache": measure_cache_speedup(),
        "batch": measure_batch_throughput(),
    }


# ---------------------------------------------------------------------------
# v2: serving throughput (threaded vs async) and shard scaling
# ---------------------------------------------------------------------------


def _fire_requests(host: str, port: int, source: str,
                   n_requests: int, concurrency: int) -> float:
    """POST the same /v1/vectorize request from N client threads;
    return elapsed wall-clock seconds."""
    import urllib.request
    from concurrent.futures import ThreadPoolExecutor

    body = json.dumps({"source": source}).encode()

    def one(_index: int) -> None:
        request = urllib.request.Request(
            f"http://{host}:{port}/v1/vectorize", data=body,
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=60) as response:
            payload = json.load(response)
            if not payload["ok"]:
                raise RuntimeError("benchmark request failed")

    one(0)                                   # warm the cache first
    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        list(pool.map(one, range(n_requests)))
    return time.perf_counter() - start


def measure_serving_throughput(source: str = DEFAULT_SOURCE,
                               n_requests: int = 200,
                               concurrency: int = 8) -> dict:
    """Requests/second for the threaded vs the asyncio front end,
    serving one warm (cache-hit) compile under concurrent clients."""
    from ..service.aserver import AsyncServerThread
    from ..service.server import CompilationServer

    server = CompilationServer(("127.0.0.1", 0),
                               CompilationService(), quiet=True)
    accept = threading.Thread(target=server.serve_forever, daemon=True)
    accept.start()
    try:
        host, port = server.server_address
        threaded_s = _fire_requests(host, port, source,
                                    n_requests, concurrency)
    finally:
        server.shutdown()
        server.server_close()

    with AsyncServerThread(service=CompilationService(),
                           max_concurrency=concurrency,
                           queue_depth=n_requests) as handle:
        async_s = _fire_requests(handle.host, handle.port, source,
                                 n_requests, concurrency)

    return {
        "requests": n_requests,
        "concurrency": concurrency,
        "threaded_s": threaded_s,
        "threaded_rps": n_requests / threaded_s,
        "async_s": async_s,
        "async_rps": n_requests / async_s,
    }


def measure_shard_scaling(tmp_root: Path | None = None,
                          shard_counts: tuple[int, ...] = (1, 4),
                          writes_per_thread: int = 96,
                          threads: int = 4,
                          repeats: int = 5) -> dict:
    """Disk-write throughput under thread contention, 1 vs N shards.

    Every ``put`` runs its whole disk write — serialize, write,
    ``fsync``, atomic rename — under the owning shard's lock, so the
    single-shard run serializes every durable write on one lock while
    the N-shard run keeps up to N fsyncs in flight.  ``fsync`` is a
    real IO wait (the GIL is released), which is what the per-shard
    locks parallelize even on one core.  Also checks the
    **identical-artifacts** property: the same compile through a
    sharded and an unsharded cache yields the same cache key and the
    same vectorized output.
    """
    import hashlib
    import tempfile

    from ..service.shardedcache import ShardedCache

    own_tmp = tmp_root is None
    if own_tmp:
        tmp_handle = tempfile.TemporaryDirectory(prefix="mvec-shardbench-")
        tmp_root = Path(tmp_handle.name)

    # A realistically sized artifact (~5 KB entry file).
    artifact = {"vectorized": "y(1:n) = 2*x(1:n);\n" * 256,
                "python": None, "stats": None, "report_summary": None}
    keysets = [[hashlib.sha256(f"bench-{t}-{i}".encode()).hexdigest()
                for i in range(writes_per_thread)]
               for t in range(threads)]
    timings = {}
    try:
        for shards in shard_counts:
            cache = ShardedCache(shards=shards, capacity=shards,
                                 directory=tmp_root / f"s{shards}")

            def worker(slice_index: int, cache=cache) -> None:
                for key in keysets[slice_index]:
                    cache.put(key, artifact)

            best = float("inf")
            for _ in range(repeats):
                pool = [threading.Thread(target=worker, args=(t,))
                        for t in range(threads)]
                start = time.perf_counter()
                for thread in pool:
                    thread.start()
                for thread in pool:
                    thread.join()
                best = min(best, time.perf_counter() - start)
            timings[shards] = best
    finally:
        if own_tmp:
            tmp_handle.cleanup()

    # Identical-artifacts check: same key, same output, either layout.
    plain = CompilationService(CompilationCache(capacity=8))
    sharded = CompilationService(
        cache=ShardedCache(shards=max(shard_counts), capacity=64))
    a = plain.compile(DEFAULT_SOURCE)
    b = sharded.compile(DEFAULT_SOURCE)
    identical = (a.cache_key == b.cache_key
                 and a.vectorized == b.vectorized)
    if not identical:
        raise RuntimeError("sharded cache produced a different artifact")

    single = timings[shard_counts[0]]
    multi = timings[shard_counts[-1]]
    writes = writes_per_thread * threads
    return {
        "threads": threads,
        "writes": writes,
        "shard_counts": list(shard_counts),
        **{f"shards_{n}_s": s for n, s in timings.items()},
        **{f"shards_{n}_writes_per_s": writes / s
           for n, s in timings.items()},
        "multi_vs_single_speedup": single / multi if multi > 0
        else float("inf"),
        "identical_artifacts": identical,
    }


def run_service_bench_v2() -> dict:
    """All four measurements — the BENCH_service_v2 payload."""
    return {
        "benchmark": "service_v2",
        "cache": measure_cache_speedup(),
        "batch": measure_batch_throughput(),
        "serving": measure_serving_throughput(),
        "shards": measure_shard_scaling(),
    }


def format_service_rows(payload: dict) -> str:
    """Render the payload in the harness's table style."""
    cache = payload["cache"]
    batch = payload["batch"]
    lines = [
        f"{'cache-cold':<24} {cache['cold_mean_s'] * 1e3:>12.3f} ms",
        f"{'cache-warm':<24} {cache['warm_mean_s'] * 1e6:>12.3f} us",
        f"{'cache-speedup':<24} {cache['speedup']:>12.1f} x",
        f"{'per-file processes':<24} {batch['per_file_processes_s']:>12.3f}"
        " s",
    ]
    for key, value in batch.items():
        if key.startswith("batch_workers_"):
            n = key.split("_")[2]
            lines.append(f"{'batch workers=' + n:<24} {value:>12.3f} s")
    lines.append(f"{'batch-speedup':<24} "
                 f"{batch['batch_speedup_vs_per_file']:>12.1f} x")
    if "serving" in payload:
        serving = payload["serving"]
        lines.append(f"{'serve threaded':<24} "
                     f"{serving['threaded_rps']:>12.1f} req/s")
        lines.append(f"{'serve async':<24} "
                     f"{serving['async_rps']:>12.1f} req/s")
    if "shards" in payload:
        shards = payload["shards"]
        for n in shards["shard_counts"]:
            lines.append(f"{f'cache shards={n}':<24} "
                         f"{shards[f'shards_{n}_writes_per_s']:>12.1f}"
                         " write/s")
        lines.append(f"{'shard-speedup':<24} "
                     f"{shards['multi_vs_single_speedup']:>12.2f} x")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    argv = list(argv or [])
    v1 = "--v1" in argv
    if v1:
        argv.remove("--v1")
    default = "BENCH_service.json" if v1 else "BENCH_service_v2.json"
    out = Path(argv[0]) if argv else REPO_ROOT / default
    payload = run_service_bench() if v1 else run_service_bench_v2()
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(format_service_rows(payload))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
