"""Service benchmarks: cache cold-vs-warm and batch throughput.

Two questions the compilation service must answer with numbers:

1. How much does the content-addressed cache buy?  ``measure_cache_speedup``
   times cold compiles (fresh service per run) against warm compiles
   (repeat requests against one service) for a representative corpus
   program.  The acceptance bar is warm ≥ 10x faster than cold.

2. How does ``mvec batch`` compare to invoking the compiler once per
   file?  Each configuration runs in a *fresh subprocess* so no run
   inherits another's in-memory cache (forked pool workers share the
   parent's ``_worker_services``, which would otherwise skew the
   numbers).  The baseline is one ``repro.cli`` process per corpus
   file — the workflow ``mvec batch`` replaces — so the batch numbers
   include exactly one interpreter startup instead of twenty-five.
   Note: on a single-core host the ``workers=4`` configuration cannot
   beat ``workers=1`` on CPU-bound compiles; the pool still wins on
   multi-core CI, and both numbers are recorded.

``python -m repro.bench.servicebench`` writes ``BENCH_service.json``.
"""

from __future__ import annotations

import json
import os
import statistics
import subprocess
import sys
import time
from pathlib import Path

from ..service.cache import CompilationCache
from ..service.compiler import CompilationService

REPO_ROOT = Path(__file__).resolve().parents[3]
CORPUS_DIR = REPO_ROOT / "examples" / "corpus"

# A mid-sized corpus program: one vectorizable loop plus surrounding
# scalar statements, representative of the serving workload.
DEFAULT_SOURCE = """\
%! x(*,1) y(*,1) n(1)
x = (1:64)';
n = 64;
for i=1:n
  y(i) = 2*x(i) + 1;
end
"""


def measure_cache_speedup(source: str = DEFAULT_SOURCE,
                          cold_runs: int = 5,
                          warm_runs: int = 50) -> dict:
    """Time cold (fresh service) vs warm (cache hit) compiles."""
    cold = []
    for _ in range(cold_runs):
        service = CompilationService(CompilationCache(capacity=8))
        start = time.perf_counter()
        result = service.compile(source)
        cold.append(time.perf_counter() - start)
        if not result.ok:
            raise RuntimeError(f"benchmark program failed: {result.error}")

    service = CompilationService(CompilationCache(capacity=8))
    service.compile(source)
    warm = []
    for _ in range(warm_runs):
        start = time.perf_counter()
        result = service.compile(source)
        warm.append(time.perf_counter() - start)
        if not result.cached:
            raise RuntimeError("warm run missed the cache")

    cold_mean = statistics.fmean(cold)
    warm_mean = statistics.fmean(warm)
    return {
        "cold_runs": cold_runs,
        "warm_runs": warm_runs,
        "cold_mean_s": cold_mean,
        "cold_min_s": min(cold),
        "warm_mean_s": warm_mean,
        "warm_min_s": min(warm),
        "speedup": cold_mean / warm_mean if warm_mean > 0 else float("inf"),
    }


def _child_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    return env


_BATCH_CHILD = """\
import sys, time
from repro.service.compiler import compile_many, read_sources
paths = sys.argv[2:]
pairs = read_sources(paths)
start = time.perf_counter()
results = compile_many(pairs, workers=int(sys.argv[1]))
elapsed = time.perf_counter() - start
bad = [r.name for r in results if not r.ok]
if bad:
    raise SystemExit(f"batch failures: {bad}")
print(elapsed)
"""


def _time_batch_child(paths: list[Path], workers: int) -> float:
    """Run ``compile_many`` in a fresh interpreter; return compile time."""
    proc = subprocess.run(
        [sys.executable, "-c", _BATCH_CHILD, str(workers),
         *map(str, paths)],
        capture_output=True, text=True, env=_child_env(), check=True)
    return float(proc.stdout.strip().splitlines()[-1])


def _time_per_file_processes(paths: list[Path]) -> float:
    """One ``repro.cli`` process per file — the pre-batch workflow."""
    env = _child_env()
    start = time.perf_counter()
    for path in paths:
        subprocess.run([sys.executable, "-m", "repro.cli", str(path)],
                       stdout=subprocess.DEVNULL, env=env, check=True)
    return time.perf_counter() - start


def measure_batch_throughput(corpus_dir: Path = CORPUS_DIR,
                             workers: tuple[int, ...] = (1, 4)) -> dict:
    """Batch-compile the corpus under each configuration, cold every time."""
    paths = sorted(corpus_dir.glob("*.m"))
    if not paths:
        raise RuntimeError(f"no corpus programs under {corpus_dir}")

    per_file = _time_per_file_processes(paths)
    configs = {f"batch_workers_{n}_s": _time_batch_child(paths, n)
               for n in workers}
    best = min(configs.values())
    return {
        "files": len(paths),
        "cpu_count": os.cpu_count(),
        "per_file_processes_s": per_file,
        **configs,
        "batch_speedup_vs_per_file": per_file / best if best > 0 else
        float("inf"),
    }


def run_service_bench() -> dict:
    """Run both measurements and return the BENCH_service payload."""
    return {
        "benchmark": "service",
        "cache": measure_cache_speedup(),
        "batch": measure_batch_throughput(),
    }


def format_service_rows(payload: dict) -> str:
    """Render the payload in the harness's table style."""
    cache = payload["cache"]
    batch = payload["batch"]
    lines = [
        f"{'cache-cold':<24} {cache['cold_mean_s'] * 1e3:>12.3f} ms",
        f"{'cache-warm':<24} {cache['warm_mean_s'] * 1e6:>12.3f} us",
        f"{'cache-speedup':<24} {cache['speedup']:>12.1f} x",
        f"{'per-file processes':<24} {batch['per_file_processes_s']:>12.3f}"
        " s",
    ]
    for key, value in batch.items():
        if key.startswith("batch_workers_"):
            n = key.split("_")[2]
            lines.append(f"{'batch workers=' + n:<24} {value:>12.3f} s")
    lines.append(f"{'batch-speedup':<24} "
                 f"{batch['batch_speedup_vs_per_file']:>12.1f} x")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    out = Path(argv[0]) if argv else REPO_ROOT / "BENCH_service.json"
    payload = run_service_bench()
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(format_service_rows(payload))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
