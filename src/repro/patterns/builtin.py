"""Builtin patterns: the three Table 2 entries plus the full broadcast family.

Every pattern here follows the paper's plugin recipe (Figure 2): declare
the operator and operand dimensionalities, and provide a transform that
rewrites the parse tree.  :func:`default_database` assembles the standard
database used by the vectorizer; callers may copy and extend it.
"""

from __future__ import annotations

from typing import Optional

from ..dims.abstract import ONE, STAR
from ..mlang.ast_nodes import (
    Apply,
    BinOp,
    Expr,
    Ident,
    Num,
    Range,
    Transpose,
    UnOp,
    call,
    num,
)
from .base import (
    ACCESS_OP,
    ANY_POINTWISE,
    AccessPattern,
    Bindings,
    BinopPattern,
    R1,
    R2,
    TransformContext,
    template,
)
from .database import PatternDatabase

# ---------------------------------------------------------------------------
# Pattern 1 — row·column dot product:  a(i) = X(i,:)*Y(:,i)
# ---------------------------------------------------------------------------


def _dot_product_transform(node: BinOp, bindings: Bindings,
                           ctx: TransformContext) -> Expr:
    """``X(i,:)*Y(:,i)``  →  ``sum(X(i,:)'.*Y(:,i), 1)``.

    After index substitution the transpose lines up the k-element rows of
    X as columns so the pointwise product against Y's columns followed by
    a column sum leaves the i-th dot product in column i (1×n row).
    """
    pointwise = BinOp(".*", Transpose(node.left), node.right)
    return call("sum", pointwise, num(1))


DOT_PRODUCT = BinopPattern(
    name="dot-product",
    operator="*",
    lhs=template(R1, STAR),
    rhs=template(STAR, R1),
    out=template(ONE, R1),
    transform=_dot_product_transform,
)

# ---------------------------------------------------------------------------
# Pattern 2 — vector broadcast across a pointwise operator (repmat family)
#   A(i,j) = B(i,j) + C(i)    →  B + repmat(C(1:m), 1, size(1:n,2))
# ---------------------------------------------------------------------------


def _repmat(expr: Expr, rows: Expr, cols: Expr) -> Expr:
    return call("repmat", expr, rows, cols)


def _broadcast(node: BinOp, *, side: str, axis: int, sym_var,
               bindings: Bindings, ctx: TransformContext) -> Expr:
    """Wrap one operand of ``node`` in ``repmat`` along ``axis``.

    ``axis`` 1 replicates rows (a 1×n row stacked m times), axis 2
    replicates columns (an m×1 column repeated n times); the replication
    count is the trip count of the loop symbol bound to ``sym_var``.
    """
    count = ctx.tripcount_expr(bindings[sym_var])
    operand = node.left if side == "left" else node.right
    if axis == 1:
        replicated = _repmat(operand, count, num(1))
    else:
        replicated = _repmat(operand, num(1), count)
    if side == "left":
        return BinOp(node.op, replicated, node.right)
    return BinOp(node.op, node.left, replicated)


COL_BROADCAST_RHS = BinopPattern(
    name="broadcast-col-rhs",
    operator=ANY_POINTWISE,
    lhs=template(R1, R2),
    rhs=template(R1, ONE),
    out=template(R1, R2),
    transform=lambda node, bindings, ctx: _broadcast(
        node, side="right", axis=2, sym_var=R2, bindings=bindings, ctx=ctx),
)

ROW_BROADCAST_RHS = BinopPattern(
    name="broadcast-row-rhs",
    operator=ANY_POINTWISE,
    lhs=template(R1, R2),
    rhs=template(ONE, R2),
    out=template(R1, R2),
    transform=lambda node, bindings, ctx: _broadcast(
        node, side="right", axis=1, sym_var=R1, bindings=bindings, ctx=ctx),
)

COL_BROADCAST_LHS = BinopPattern(
    name="broadcast-col-lhs",
    operator=ANY_POINTWISE,
    lhs=template(R1, ONE),
    rhs=template(R1, R2),
    out=template(R1, R2),
    transform=lambda node, bindings, ctx: _broadcast(
        node, side="left", axis=2, sym_var=R2, bindings=bindings, ctx=ctx),
)

ROW_BROADCAST_LHS = BinopPattern(
    name="broadcast-row-lhs",
    operator=ANY_POINTWISE,
    lhs=template(ONE, R2),
    rhs=template(R1, R2),
    out=template(R1, R2),
    transform=lambda node, bindings, ctx: _broadcast(
        node, side="left", axis=1, sym_var=R1, bindings=bindings, ctx=ctx),
)

def _star_broadcast(node: BinOp, bindings: Bindings, ctx: TransformContext,
                    *, vector_side: str, axis: int) -> Expr:
    """Broadcast a per-iteration scalar across a data (``*``) extent:
    ``B(:,j)*c(j)`` → ``B(:,1:n).*repmat(c(1:n)', size(B(:,1:n),1), 1)``.

    ``axis`` 1 replicates the (row-shaped) vector down the other
    operand's rows; axis 2 replicates the (column-shaped) vector across
    its columns.  The replication count is the *data* extent, taken from
    the matrix-shaped operand with ``size``.
    """
    matrix_expr = node.right if vector_side == "left" else node.left
    vector_expr = node.left if vector_side == "left" else node.right
    count = call("size", matrix_expr, num(axis))
    if axis == 1:
        replicated = _repmat(vector_expr, count, num(1))
    else:
        replicated = _repmat(vector_expr, num(1), count)
    if vector_side == "left":
        return BinOp(node.op, replicated, node.right)
    return BinOp(node.op, node.left, replicated)


SCALE_COLS_RHS = BinopPattern(
    name="broadcast-scale-cols-rhs",
    operator=ANY_POINTWISE,
    lhs=template(STAR, R1),
    rhs=template(ONE, R1),
    out=template(STAR, R1),
    transform=lambda node, bindings, ctx: _star_broadcast(
        node, bindings, ctx, vector_side="right", axis=1),
)

SCALE_ROWS_RHS = BinopPattern(
    name="broadcast-scale-rows-rhs",
    operator=ANY_POINTWISE,
    lhs=template(R1, STAR),
    rhs=template(R1, ONE),
    out=template(R1, STAR),
    transform=lambda node, bindings, ctx: _star_broadcast(
        node, bindings, ctx, vector_side="right", axis=2),
)

SCALE_COLS_LHS = BinopPattern(
    name="broadcast-scale-cols-lhs",
    operator=ANY_POINTWISE,
    lhs=template(ONE, R1),
    rhs=template(STAR, R1),
    out=template(STAR, R1),
    transform=lambda node, bindings, ctx: _star_broadcast(
        node, bindings, ctx, vector_side="left", axis=1),
)

SCALE_ROWS_LHS = BinopPattern(
    name="broadcast-scale-rows-lhs",
    operator=ANY_POINTWISE,
    lhs=template(R1, ONE),
    rhs=template(R1, STAR),
    out=template(R1, STAR),
    transform=lambda node, bindings, ctx: _star_broadcast(
        node, bindings, ctx, vector_side="left", axis=2),
)


def _outer_broadcast(node: BinOp, bindings: Bindings, ctx: TransformContext,
                     *, col_side: str) -> Expr:
    """Both operands need replication: ``B(i,1) + j`` tiles the column
    across the row's extent and vice versa (an extension of pattern 2 —
    the paper's table only broadcasts one operand)."""
    rows = ctx.tripcount_expr(bindings[R1])
    cols = ctx.tripcount_expr(bindings[R2])
    if col_side == "left":
        left = _repmat(node.left, num(1), cols)
        right = _repmat(node.right, rows, num(1))
    else:
        left = _repmat(node.left, rows, num(1))
        right = _repmat(node.right, num(1), cols)
    return BinOp(node.op, left, right)


OUTER_BROADCAST_COL_ROW = BinopPattern(
    name="broadcast-outer-col-row",
    operator=ANY_POINTWISE,
    lhs=template(R1, ONE),
    rhs=template(ONE, R2),
    out=template(R1, R2),
    transform=lambda node, bindings, ctx: _outer_broadcast(
        node, bindings, ctx, col_side="left"),
)

OUTER_BROADCAST_ROW_COL = BinopPattern(
    name="broadcast-outer-row-col",
    operator=ANY_POINTWISE,
    lhs=template(ONE, R2),
    rhs=template(R1, ONE),
    out=template(R1, R2),
    transform=lambda node, bindings, ctx: _outer_broadcast(
        node, bindings, ctx, col_side="right"),
)

# ---------------------------------------------------------------------------
# Pattern 3 — duplicate-r matrix access (diagonal family):  A(i,i)
# ---------------------------------------------------------------------------


def poly_degree(expr: Expr, var: str) -> Optional[int]:
    """Polynomial degree of ``expr`` in variable ``var`` (0 or 1), or None
    when the expression is nonlinear in / non-polynomial over ``var``."""
    if isinstance(expr, Num):
        return 0
    if isinstance(expr, Ident):
        return 1 if expr.name == var else 0
    if isinstance(expr, UnOp) and expr.op in "+-":
        return poly_degree(expr.operand, var)
    if isinstance(expr, BinOp):
        left = poly_degree(expr.left, var)
        right = poly_degree(expr.right, var)
        if left is None or right is None:
            return None
        if expr.op in ("+", "-"):
            return max(left, right)
        if expr.op in ("*", ".*"):
            degree = left + right
            return degree if degree <= 1 else None
        if expr.op in ("/", "./") and right == 0:
            return left
        return None
    if isinstance(expr, Range):
        return None
    # Any other construct: linear only if the variable does not occur.
    mentions = any(isinstance(n, Ident) and n.name == var for n in expr.walk())
    return None if mentions else 0


def _diagonal_transform(node: Apply, bindings: Bindings,
                        ctx: TransformContext) -> Optional[Expr]:
    """``A(c1*i+c2, c3*i+c4)``  →  ``A(c1*i+c2 + size(A,1)*(c3*i+c4-1))``.

    Valid because MATLAB matrices are stored column-major, so the linear
    index of element (r, c) is ``r + size(A,1)*(c-1)``.  Declines (returns
    None) unless both subscripts are affine in the bound loop variable.
    """
    if len(node.args) != 2:
        return None
    sym = bindings[R1]
    row_sub, col_sub = node.args
    if poly_degree(row_sub, sym.name) != 1 or poly_degree(col_sub, sym.name) != 1:
        return None
    leading = call("size", node.func, num(1))
    linear = BinOp("+", row_sub,
                   BinOp("*", leading, BinOp("-", col_sub, num(1))))
    return Apply(node.func, [linear])


DIAGONAL_ACCESS = AccessPattern(
    name="diagonal-access",
    dims=template(R1, R1),
    out=template(ONE, R1),
    transform=_diagonal_transform,
)


def default_database() -> PatternDatabase:
    """The standard pattern database shipped with the vectorizer.

    Contains the paper's three Table 2 patterns; the broadcast family
    generalizes pattern 2 to every orientation/operand-side combination.
    """
    return PatternDatabase(
        [
            DOT_PRODUCT,
            COL_BROADCAST_RHS,
            ROW_BROADCAST_RHS,
            COL_BROADCAST_LHS,
            ROW_BROADCAST_LHS,
            OUTER_BROADCAST_COL_ROW,
            OUTER_BROADCAST_ROW_COL,
            SCALE_COLS_RHS,
            SCALE_ROWS_RHS,
            SCALE_COLS_LHS,
            SCALE_ROWS_LHS,
            DIAGONAL_ACCESS,
        ]
    )
