"""The extensible loop-pattern database (§3).

Patterns are held in registration order; lookup returns the first
match.  Users extend the vectorizer by registering additional
:class:`~repro.patterns.base.BinopPattern` /
:class:`~repro.patterns.base.AccessPattern` objects — the plugin-style
replacement for the paper's dynamically loaded libraries (Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..dims.abstract import Dim
from ..errors import PatternError
from ..mlang.ast_nodes import Apply, Expr
from .base import (
    AccessPattern,
    Bindings,
    BinopPattern,
    CallPattern,
    Pattern,
    TransformContext,
)


@dataclass
class BinopMatch:
    """A successful binary-operator pattern match."""

    pattern: BinopPattern
    bindings: Bindings

    @property
    def out_dim(self) -> Dim:
        return self.pattern.out.instantiate(self.bindings)


@dataclass
class CallMatch:
    """A successful function-call pattern match."""

    pattern: CallPattern
    bindings: Bindings
    replacement: Expr

    @property
    def out_dim(self) -> Dim:
        return self.pattern.out.instantiate(self.bindings)


@dataclass
class AccessMatch:
    """A successful matrix-access pattern match (transform already applied)."""

    pattern: AccessPattern
    bindings: Bindings
    replacement: Expr

    @property
    def out_dim(self) -> Dim:
        return self.pattern.out.instantiate(self.bindings)


class PatternDatabase:
    """An ordered, name-indexed collection of patterns."""

    def __init__(self, patterns: Optional[list[Pattern]] = None):
        self._patterns: list[Pattern] = []
        self._by_name: dict[str, Pattern] = {}
        for pattern in patterns or []:
            self.register(pattern)

    # -- registration ----------------------------------------------------

    def register(self, pattern: Pattern) -> None:
        """Add a pattern; names must be unique within the database."""
        if pattern.name in self._by_name:
            raise PatternError(f"pattern {pattern.name!r} is already registered")
        self._patterns.append(pattern)
        self._by_name[pattern.name] = pattern

    def unregister(self, name: str) -> Pattern:
        """Remove and return the pattern registered under ``name``."""
        pattern = self._by_name.pop(name, None)
        if pattern is None:
            raise PatternError(f"no pattern named {name!r}")
        self._patterns.remove(pattern)
        return pattern

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[Pattern]:
        return iter(self._patterns)

    def __len__(self) -> int:
        return len(self._patterns)

    def names(self) -> list[str]:
        return [p.name for p in self._patterns]

    def copy(self) -> "PatternDatabase":
        return PatternDatabase(list(self._patterns))

    # -- lookup ----------------------------------------------------------

    def match_binop(self, op: str, lhs_dim: Dim,
                    rhs_dim: Dim) -> Optional[BinopMatch]:
        """First binary pattern matching (op, operand dims), or None."""
        for pattern in self._patterns:
            if isinstance(pattern, BinopPattern):
                bindings = pattern.match(op, lhs_dim, rhs_dim)
                if bindings is not None:
                    return BinopMatch(pattern, bindings)
        return None

    def match_call(self, node: Apply, function: str, arg_dims: list,
                   ctx: TransformContext) -> Optional[CallMatch]:
        """First call pattern matching (callee, argument dims) whose
        transform accepts the node."""
        for pattern in self._patterns:
            if isinstance(pattern, CallPattern):
                bindings = pattern.match(function, arg_dims)
                if bindings is None:
                    continue
                replacement = pattern.transform(node, bindings, ctx)
                if replacement is not None:
                    return CallMatch(pattern, bindings, replacement)
        return None

    def match_access(self, node: Apply, access_dim: Dim,
                     ctx: TransformContext) -> Optional[AccessMatch]:
        """First access pattern matching ``access_dim`` whose transform
        accepts the node (transforms may decline non-affine subscripts)."""
        for pattern in self._patterns:
            if isinstance(pattern, AccessPattern):
                bindings = pattern.match(access_dim)
                if bindings is None:
                    continue
                replacement = pattern.transform(node, bindings, ctx)
                if replacement is not None:
                    return AccessMatch(pattern, bindings, replacement)
        return None
