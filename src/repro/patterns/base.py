"""Pattern-database core types (§3 of the paper).

A *pattern* is indexed by an operator and by dimensionality templates
for its operands; when the §2.1 compatibility check fails, the
vectorizer probes the database, and a matching pattern supplies (a) the
output dimensionality of the expression and (b) a *transform* that
rewrites the parse tree into intrinsic-based vector code when the
enclosing statement is ultimately vectorized.

Templates are dimensionality tuples over ``1``, ``*``, and pattern
variables ``R1``, ``R2``, … which bind to concrete loop symbols
(``r_i``) during matching.  This mirrors the paper's Table 2 and the
DLL interface of Figure 2; registration replaces dynamic loading.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Protocol, Sequence, Union

from ..dims.abstract import ONE, STAR, Dim, RSym, Sym
from ..errors import PatternError
from ..mlang.ast_nodes import Apply, BinOp, Expr

# ---------------------------------------------------------------------------
# Dimensionality templates
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class PatVar:
    """A pattern variable ``R<k>`` binding to one concrete loop symbol."""

    index: int

    def __repr__(self) -> str:
        return f"R{self.index}"


#: Convenient pattern variables for builtin definitions.
R1, R2, R3 = PatVar(1), PatVar(2), PatVar(3)

TemplateSym = Union[type(ONE), PatVar]
Bindings = dict[PatVar, RSym]


@dataclass(frozen=True)
class DimTemplate:
    """An ordered tuple of template symbols, e.g. ``(R1, *)``."""

    syms: tuple[object, ...]

    def __post_init__(self) -> None:
        for sym in self.syms:
            if not (sym is ONE or sym is STAR or isinstance(sym, PatVar)):
                raise PatternError(f"invalid template symbol {sym!r}")

    def __repr__(self) -> str:
        return "(" + ",".join(str(s) for s in self.syms) + ")"

    def match(self, dim: Dim, bindings: Bindings) -> Optional[Bindings]:
        """Match ``dim`` against this template, extending ``bindings``.

        Matching normalizes both sides with ``freduce`` + padding so a
        ``(r_i)`` column matches the ``(R1, 1)`` template.  Returns the
        extended bindings, or None on mismatch.  Distinct pattern
        variables must bind distinct loop symbols.
        """
        reduced = dim.reduce()
        rank = max(len(self.syms), len(reduced))
        concrete = reduced.pad(rank)
        template = self.syms + (ONE,) * (rank - len(self.syms))
        out = dict(bindings)
        for want, have in zip(template, concrete):
            if isinstance(want, PatVar):
                if not isinstance(have, RSym):
                    return None
                bound = out.get(want)
                if bound is None:
                    if have in out.values():
                        return None
                    out[want] = have
                elif bound != have:
                    return None
            elif want is not have:
                return None
        return out

    def instantiate(self, bindings: Bindings) -> Dim:
        """The concrete dimensionality for fully bound pattern variables."""
        out: list[Sym] = []
        for sym in self.syms:
            if isinstance(sym, PatVar):
                bound = bindings.get(sym)
                if bound is None:
                    raise PatternError(f"unbound pattern variable {sym!r}")
                out.append(bound)
            else:
                out.append(sym)
        return Dim(out)


def template(*syms: object) -> DimTemplate:
    """Build a :class:`DimTemplate` from symbols (``ONE``/``STAR``/``R1``…)."""
    return DimTemplate(tuple(syms))


# ---------------------------------------------------------------------------
# Transform context — what a transform may ask the vectorizer for
# ---------------------------------------------------------------------------


class TransformContext(Protocol):
    """Services the vectorizer exposes to pattern transforms.

    Transforms run *before* index-variable substitution, so they emit
    expressions still written in terms of the loop index variables; the
    context answers questions about the loops being vectorized.
    """

    def range_expr(self, sym: RSym) -> Expr:
        """The loop range (e.g. ``1:n``) that will replace symbol ``sym``."""
        ...

    def tripcount_expr(self, sym: RSym) -> Expr:
        """An expression for the trip count of ``sym``'s loop,
        e.g. ``size(1:n, 2)``."""
        ...

    def base_dim_of(self, expr: Expr) -> Optional[Dim]:
        """Base (unvectorized) dims of an expression, when derivable."""
        ...


# ---------------------------------------------------------------------------
# Pattern classes
# ---------------------------------------------------------------------------

#: Pseudo-operator for matrix-access patterns (the paper's ``(·)`` rows).
ACCESS_OP = "(.)"

#: Marker accepted in place of a concrete operator: matches any of the
#: pointwise arithmetic operators (the paper's pattern 2 row applies to
#: "any pointwise operator").
POINTWISE_OPS = frozenset({"+", "-", ".*", "./", ".^"})
ANY_POINTWISE = "pointwise"

BinTransform = Callable[[BinOp, Bindings, TransformContext], Expr]
AccessTransform = Callable[[Apply, Bindings, TransformContext], Optional[Expr]]


@dataclass(frozen=True)
class BinopPattern:
    """A pattern over a binary expression (Table 2 rows 1–2).

    ``operator`` is a MATLAB operator spelling or :data:`ANY_POINTWISE`.
    ``transform`` receives the matched node and must return the
    replacement expression (still in terms of loop index variables).
    """

    name: str
    operator: str
    lhs: DimTemplate
    rhs: DimTemplate
    out: DimTemplate
    transform: BinTransform

    def matches_operator(self, op: str) -> bool:
        if self.operator == ANY_POINTWISE:
            return op in POINTWISE_OPS
        return self.operator == op

    def match(self, op: str, lhs_dim: Dim, rhs_dim: Dim) -> Optional[Bindings]:
        """Bindings when (op, operand dims) match this pattern, else None."""
        if not self.matches_operator(op):
            return None
        bindings = self.lhs.match(lhs_dim, {})
        if bindings is None:
            return None
        return self.rhs.match(rhs_dim, bindings)


@dataclass(frozen=True)
class AccessPattern:
    """A pattern over a matrix access whose vectorized dims repeat an
    ``r`` symbol (Table 2 row 3 — e.g. the diagonal access ``A(i,i)``).

    ``transform`` may return None to signal that, although the dims
    matched, the actual subscript expressions are outside the transform's
    power (e.g. non-affine subscripts), in which case matching falls
    through to later patterns.
    """

    name: str
    dims: DimTemplate
    out: DimTemplate
    transform: AccessTransform

    def match(self, access_dim: Dim) -> Optional[Bindings]:
        return self.dims.match(access_dim, {})


@dataclass(frozen=True)
class CallPattern:
    """A pattern over a function call whose arguments carry loop symbols.

    §7 of the paper suggests treating function calls "in the same manner
    as matrix accesses" in the database; this class realizes that: the
    pattern is keyed by the callee name and the vectorized
    dimensionalities of its arguments, and its transform rewrites the
    call into an intrinsic-based equivalent (e.g. a per-row ``norm``
    into ``sqrt(sum(.^2))``).
    """

    name: str
    function: str
    args: tuple[DimTemplate, ...]
    out: DimTemplate
    transform: Callable[[Apply, Bindings, TransformContext], Optional[Expr]]

    def match(self, function: str,
              arg_dims: Sequence[Dim]) -> Optional[Bindings]:
        if function != self.function or len(arg_dims) != len(self.args):
            return None
        bindings: Bindings = {}
        for template_, dim in zip(self.args, arg_dims):
            matched = template_.match(dim, bindings)
            if matched is None:
                return None
            bindings = matched
        return bindings


Pattern = Union[BinopPattern, AccessPattern, CallPattern]
