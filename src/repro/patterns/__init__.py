"""The extensible loop-pattern database (§3)."""

from .base import (  # noqa: F401
    ACCESS_OP,
    ANY_POINTWISE,
    AccessPattern,
    BinopPattern,
    CallPattern,
    DimTemplate,
    PatVar,
    R1,
    R2,
    R3,
    template,
)
from .builtin import default_database  # noqa: F401
from .database import PatternDatabase  # noqa: F401
