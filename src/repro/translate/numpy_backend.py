"""MATLAB → Python/NumPy transpiler.

Compiles a parsed MATLAB program to Python source that calls the same
value-model primitives as the interpreter (so semantics — column-major
storage, 1-based indexing, no implicit broadcasting, auto-growth — are
preserved exactly), then ``exec``s it into a callable.

This is the "NumPy rewriting analog" extension: where the paper emits
vectorized *MATLAB*, pairing the vectorizer with this backend emits
vectorized *Python*.  Compilation removes the per-node tree-walking
dispatch, so even loop code runs several times faster than under the
interpreter, and vectorized statements become straight NumPy calls.

Name resolution happens at compile time: a name is a *variable* when it
is assigned anywhere in the program, appears in a ``%!`` annotation, or
is declared via ``extra_variables`` (for inputs supplied in the initial
workspace); otherwise a known builtin name compiles to a function call.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

import numpy as np

from ..errors import TranslateError
from ..mlang.annotations import parse_annotations
from ..mlang.ast_nodes import (
    Annotation,
    Apply,
    Assign,
    BinOp,
    Break,
    Colon,
    Continue,
    End,
    Expr,
    ExprStmt,
    For,
    FunctionDef,
    Global,
    Ident,
    If,
    Matrix,
    MultiAssign,
    Num,
    Program,
    Range,
    Return,
    Stmt,
    Str,
    Transpose,
    UnOp,
    While,
)
from ..mlang.parser import parse
from ..runtime import values as V
from ..runtime.builtins import CONSTANTS, colon_range, make_builtins

_BINOP_FUNCS = {
    "+": "_V.add",
    "-": "_V.sub",
    "*": "_V.matmul",
    ".*": "_V.elmul",
    "/": "_V.rdivide",
    "./": "_V.eldiv",
    "\\": "_V.ldivide",
    ".\\": "_V.elleftdiv",
    "^": "_V.mpower",
    ".^": "_V.elpow",
    "&": "_V.logical_and",
    "|": "_V.logical_or",
}

_COMPARISONS = ("==", "~=", "<", "<=", ">", ">=")


def _mangle(name: str) -> str:
    return f"v_{name}"


@dataclass
class TranslationUnit:
    """The result of translating a program."""

    python_source: str
    variables: tuple[str, ...]
    entry_point: str = "mprogram"

    def compile(self) -> Callable[..., dict]:
        """Exec the generated source; returns the program callable.

        The callable signature is ``fn(env=None, seed=None) -> dict``.
        """
        from ..runtime.builtins import call_multi

        namespace: dict = {
            "_V": V,
            "np": np,
            "_make_builtins": make_builtins,
            "_colon": colon_range,
            "_CONSTANTS": CONSTANTS,
            "_call_multi": call_multi,
        }
        code = compile(self.python_source, "<repro.translate>", "exec")
        exec(code, namespace)
        return namespace[self.entry_point]


class _Emitter:
    def __init__(self) -> None:
        self.lines: list[str] = []
        self._temp = itertools.count()

    def line(self, depth: int, text: str) -> None:
        self.lines.append("    " * depth + text)

    def temp(self) -> str:
        return f"_t{next(self._temp)}"


class Translator:
    """Translate one program; see :func:`translate_program`."""

    def __init__(self, program: Program,
                 extra_variables: Iterable[str] = ()):
        self.program = program
        self.functions = {s.name: s for s in program.body
                          if isinstance(s, FunctionDef)}
        self.variables = self._collect_variables(extra_variables)
        self.builtin_names = set(make_builtins(
            np.random.default_rng(0)).keys())

    # -- name resolution ---------------------------------------------------

    def _collect_variables(self, extra: Iterable[str]) -> set[str]:
        names: set[str] = set(extra)
        annotated = parse_annotations(self.program.annotations)
        names.update(annotated.shapes.keys())
        for node in self.program.walk():
            if isinstance(node, Assign):
                target = node.lhs
                if isinstance(target, Ident):
                    names.add(target.name)
                elif isinstance(target, Apply) and isinstance(target.func,
                                                              Ident):
                    names.add(target.func.name)
            elif isinstance(node, MultiAssign):
                for target in node.targets:
                    if isinstance(target, Ident):
                        names.add(target.name)
                    elif isinstance(target, Apply) and isinstance(
                            target.func, Ident):
                        names.add(target.func.name)
            elif isinstance(node, For):
                names.add(node.var)
            elif isinstance(node, Global):
                names.update(node.names)
        names -= set(self.functions)
        return names

    def _is_variable(self, name: str) -> bool:
        return name in self.variables

    # -- entry point ---------------------------------------------------------

    def translate(self) -> TranslationUnit:
        emitter = _Emitter()
        emitter.line(0, "class _MReturn(Exception):")
        emitter.line(1, "pass")
        emitter.line(0, "")
        emitter.line(0, "def mprogram(env=None, seed=None):")
        emitter.line(1, "_b = _make_builtins(np.random.default_rng(seed))")
        emitter.line(1, "env = env if env is not None else {}")
        ordered = sorted(self.variables)
        for name in ordered:
            emitter.line(1, f"{_mangle(name)} = env.get({name!r})")
        for fn in self.functions.values():
            self._emit_function(emitter, fn)
        body = [s for s in self.program.body
                if not isinstance(s, FunctionDef)]
        emitter.line(1, "try:")
        self._emit_block(emitter, body, 2)
        emitter.line(1, "except _MReturn:")
        emitter.line(2, "pass")
        result_items = ", ".join(
            f"{name!r}: {_mangle(name)}" for name in ordered)
        emitter.line(1, f"_out = {{{result_items}}}")
        emitter.line(1, "return {k: v for k, v in _out.items() "
                        "if v is not None}")
        source = "\n".join(emitter.lines) + "\n"
        return TranslationUnit(source, tuple(ordered))

    # -- functions ----------------------------------------------------------

    def _emit_function(self, emitter: _Emitter, fn: FunctionDef) -> None:
        params = ", ".join(_mangle(p) for p in fn.params)
        emitter.line(1, f"def f_{fn.name}({params}):")
        local_names = self._function_locals(fn)
        for name in sorted(local_names - set(fn.params)):
            emitter.line(2, f"{_mangle(name)} = None")
        emitter.line(2, "try:")
        inner = _FunctionTranslator(self, fn)
        inner.emit_body(emitter)
        emitter.line(2, "except _MReturn:")
        emitter.line(3, "pass")
        outs = ", ".join(_mangle(o) for o in fn.outs) if fn.outs else "None"
        emitter.line(2, f"return ({outs},)" if len(fn.outs) <= 1
                     else f"return ({outs})")

    def _function_locals(self, fn: FunctionDef) -> set[str]:
        names: set[str] = set(fn.params)
        for node in fn.walk():
            if isinstance(node, Assign):
                target = node.lhs
                if isinstance(target, Ident):
                    names.add(target.name)
                elif isinstance(target, Apply) and isinstance(target.func,
                                                              Ident):
                    names.add(target.func.name)
            elif isinstance(node, For):
                names.add(node.var)
        return names

    # -- statements ---------------------------------------------------------

    def _emit_block(self, emitter: _Emitter, stmts: list[Stmt],
                    depth: int, local_vars: Optional[set[str]] = None) -> None:
        if not stmts:
            emitter.line(depth, "pass")
            return
        for stmt in stmts:
            self._emit_stmt(emitter, stmt, depth, local_vars)

    def _emit_stmt(self, emitter: _Emitter, stmt: Stmt, depth: int,
                   local_vars: Optional[set[str]]) -> None:
        if isinstance(stmt, Annotation):
            return
        if isinstance(stmt, Assign):
            self._emit_assign(emitter, stmt, depth, local_vars)
        elif isinstance(stmt, ExprStmt):
            value = self._expr(stmt.expr, local_vars)
            if stmt.suppress:
                emitter.line(depth, value)
            else:
                emitter.line(depth, f"env['ans'] = {value}")
        elif isinstance(stmt, For):
            self._emit_for(emitter, stmt, depth, local_vars)
        elif isinstance(stmt, While):
            cond = self._expr(stmt.cond, local_vars)
            emitter.line(depth, f"while _V.is_truthy({cond}):")
            self._emit_block(emitter, stmt.body, depth + 1, local_vars)
        elif isinstance(stmt, If):
            for index, (cond, body) in enumerate(stmt.tests):
                keyword = "if" if index == 0 else "elif"
                cond_src = self._expr(cond, local_vars)
                emitter.line(depth, f"{keyword} _V.is_truthy({cond_src}):")
                self._emit_block(emitter, body, depth + 1, local_vars)
            if stmt.orelse:
                emitter.line(depth, "else:")
                self._emit_block(emitter, stmt.orelse, depth + 1,
                                 local_vars)
        elif isinstance(stmt, Break):
            emitter.line(depth, "break")
        elif isinstance(stmt, Continue):
            emitter.line(depth, "continue")
        elif isinstance(stmt, Return):
            emitter.line(depth, "raise _MReturn()")
        elif isinstance(stmt, MultiAssign):
            self._emit_multi_assign(emitter, stmt, depth, local_vars)
        elif isinstance(stmt, Global):
            pass
        else:
            raise TranslateError(
                f"cannot translate statement {type(stmt).__name__}")

    def _emit_assign(self, emitter: _Emitter, stmt: Assign, depth: int,
                     local_vars: Optional[set[str]]) -> None:
        rhs = self._expr(stmt.rhs, local_vars)
        lhs = stmt.lhs
        if isinstance(lhs, Ident):
            emitter.line(depth, f"{_mangle(lhs.name)} = {rhs}")
            return
        if isinstance(lhs, Apply) and isinstance(lhs.func, Ident):
            name = _mangle(lhs.func.name)
            subs = self._subscripts(lhs.args, name, local_vars)
            emitter.line(depth,
                         f"{name} = _V.index_write({name}, {subs}, {rhs})")
            return
        raise TranslateError("unsupported assignment target")

    def _emit_multi_assign(self, emitter: _Emitter, stmt: MultiAssign,
                           depth: int,
                           local_vars: Optional[set[str]]) -> None:
        rhs = stmt.rhs
        if isinstance(rhs, Apply) and isinstance(rhs.func, Ident) \
                and rhs.func.name in self.functions:
            args = ", ".join(self._expr(a, local_vars) for a in rhs.args)
            temp = emitter.temp()
            emitter.line(depth, f"{temp} = f_{rhs.func.name}({args})")
            for index, target in enumerate(stmt.targets):
                if isinstance(target, Ident):
                    emitter.line(depth,
                                 f"{_mangle(target.name)} = {temp}[{index}]")
                else:
                    raise TranslateError(
                        "indexed multi-assignment targets are unsupported")
            return
        if isinstance(rhs, Apply) and isinstance(rhs.func, Ident) \
                and rhs.func.name in self.builtin_names \
                and not self._is_variable(rhs.func.name):
            name = rhs.func.name
            args = ", ".join(self._expr(a, local_vars) for a in rhs.args)
            temp = emitter.temp()
            emitter.line(depth,
                         f"{temp} = _call_multi(_b, {name!r}, [{args}], "
                         f"{len(stmt.targets)})")
            emitter.line(depth, f"if {temp} is None:")
            emitter.line(depth + 1,
                         f"raise _V.MatlabRuntimeError("
                         f"'{name}: too many output arguments')")
            for index, target in enumerate(stmt.targets):
                if not isinstance(target, Ident):
                    raise TranslateError(
                        "indexed multi-assignment targets are unsupported")
                emitter.line(depth,
                             f"{_mangle(target.name)} = {temp}[{index}]")
            return
        raise TranslateError("unsupported multi-output call")

    def _emit_for(self, emitter: _Emitter, stmt: For, depth: int,
                  local_vars: Optional[set[str]]) -> None:
        var = _mangle(stmt.var)
        if isinstance(stmt.iter, Range):
            lo = self._expr(stmt.iter.start, local_vars)
            hi = self._expr(stmt.iter.stop, local_vars)
            step = self._expr(stmt.iter.step, local_vars) \
                if stmt.iter.step is not None else "1.0"
            lo_t, hi_t, st_t, count = (emitter.temp(), emitter.temp(),
                                       emitter.temp(), emitter.temp())
            emitter.line(depth, f"{lo_t} = _V.as_scalar({lo})")
            emitter.line(depth, f"{hi_t} = _V.as_scalar({hi})")
            emitter.line(depth, f"{st_t} = _V.as_scalar({step})")
            emitter.line(depth, f"{count} = int(np.floor(({hi_t} - {lo_t})"
                                f" / {st_t} + 1e-10)) + 1")
            index = emitter.temp()
            emitter.line(depth,
                         f"for {index} in range(max({count}, 0)):")
            emitter.line(depth + 1, f"{var} = {lo_t} + {st_t}*{index}")
            self._emit_block(emitter, stmt.body, depth + 1, local_vars)
            return
        iterable = self._expr(stmt.iter, local_vars)
        arr = emitter.temp()
        emitter.line(depth, f"{arr} = _V.as_array({iterable})")
        col = emitter.temp()
        emitter.line(depth, f"for {col} in range({arr}.shape[1]):")
        emitter.line(depth + 1,
                     f"{var} = float({arr}[0, {col}]) if {arr}.shape[0] == 1 "
                     f"else np.asfortranarray({arr}[:, [{col}]])")
        self._emit_block(emitter, stmt.body, depth + 1, local_vars)

    # -- expressions ----------------------------------------------------------

    def _expr(self, expr: Expr, local_vars: Optional[set[str]]) -> str:
        if isinstance(expr, Num):
            return repr(expr.value)
        if isinstance(expr, Str):
            return repr(expr.value)
        if isinstance(expr, Ident):
            return self._ident(expr.name, local_vars)
        if isinstance(expr, BinOp):
            return self._binop(expr, local_vars)
        if isinstance(expr, UnOp):
            inner = self._expr(expr.operand, local_vars)
            if expr.op == "-":
                return f"_V.negate({inner})"
            if expr.op == "~":
                return f"_V.logical_not({inner})"
            return inner
        if isinstance(expr, Transpose):
            return f"_V.transpose({self._expr(expr.operand, local_vars)})"
        if isinstance(expr, Range):
            lo = self._expr(expr.start, local_vars)
            hi = self._expr(expr.stop, local_vars)
            step = self._expr(expr.step, local_vars) \
                if expr.step is not None else "1.0"
            return (f"_colon(_V.as_scalar({lo}), _V.as_scalar({step}), "
                    f"_V.as_scalar({hi}))")
        if isinstance(expr, Matrix):
            rows = ", ".join(
                "[" + ", ".join(self._expr(e, local_vars) for e in row)
                + "]" for row in expr.rows)
            return f"_V.build_matrix([{rows}])"
        if isinstance(expr, Apply):
            return self._apply(expr, local_vars)
        if isinstance(expr, (Colon, End)):
            raise TranslateError("':'/'end' outside a subscript")
        raise TranslateError(
            f"cannot translate expression {type(expr).__name__}")

    def _ident(self, name: str, local_vars: Optional[set[str]]) -> str:
        if self._is_variable(name) or (local_vars and name in local_vars):
            return _mangle(name)
        if name in CONSTANTS:
            return f"_CONSTANTS[{name!r}]"
        if name in self.builtin_names:
            return f"_b[{name!r}]()"
        if name in self.functions:
            return f"f_{name}()[0]"
        raise TranslateError(f"unresolved name {name!r}")

    def _binop(self, expr: BinOp, local_vars: Optional[set[str]]) -> str:
        left = self._expr(expr.left, local_vars)
        right = self._expr(expr.right, local_vars)
        if expr.op in _BINOP_FUNCS:
            return f"{_BINOP_FUNCS[expr.op]}({left}, {right})"
        if expr.op in _COMPARISONS:
            return f"_V.compare({expr.op!r}, {left}, {right})"
        if expr.op == "&&":
            return (f"(1.0 if (_V.is_truthy({left}) and "
                    f"_V.is_truthy({right})) else 0.0)")
        if expr.op == "||":
            return (f"(1.0 if (_V.is_truthy({left}) or "
                    f"_V.is_truthy({right})) else 0.0)")
        raise TranslateError(f"cannot translate operator {expr.op!r}")

    def _apply(self, expr: Apply, local_vars: Optional[set[str]]) -> str:
        if not isinstance(expr.func, Ident):
            target = self._expr(expr.func, local_vars)
            binder = f"_lt{abs(id(expr)) % 1000000}"
            return self._subscripts(expr.args, binder, local_vars,
                                    bind=target)
        name = expr.func.name
        if self._is_variable(name) or (local_vars and name in local_vars):
            mangled = _mangle(name)
            subs = self._subscripts(expr.args, mangled, local_vars)
            return f"_V.index_read({mangled}, {subs})"
        if name in self.functions:
            args = ", ".join(self._expr(a, local_vars) for a in expr.args)
            return f"f_{name}({args})[0]"
        if name in self.builtin_names:
            args = ", ".join(self._expr(a, local_vars) for a in expr.args)
            return f"_b[{name!r}]({args})"
        raise TranslateError(f"unresolved name {name!r}")

    def _subscripts(self, args: list[Expr], target: str,
                    local_vars: Optional[set[str]],
                    bind: Optional[str] = None) -> str:
        total = len(args)
        parts = []
        for position, arg in enumerate(args):
            if isinstance(arg, Colon):
                parts.append("_V.COLON")
                continue
            parts.append(self._subscript_expr(arg, target, position, total,
                                              local_vars))
        listing = "[" + ", ".join(parts) + "]"
        if bind is not None:
            return (f"(lambda {target}: _V.index_read({target}, "
                    f"{listing}))({bind})")
        return listing

    def _subscript_expr(self, arg: Expr, target: str, position: int,
                        total: int,
                        local_vars: Optional[set[str]]) -> str:
        if not any(isinstance(n, End) for n in arg.walk()):
            return self._expr(arg, local_vars)
        if total == 1:
            end_src = (f"float(_V.shape_of({target})[0]"
                       f"*_V.shape_of({target})[1])")
        else:
            end_src = f"float(_V.shape_of({target})[{position}])"
        return self._expr_with_end(arg, end_src, local_vars)

    def _expr_with_end(self, arg: Expr, end_src: str,
                       local_vars: Optional[set[str]]) -> str:
        if isinstance(arg, End):
            return end_src
        if isinstance(arg, BinOp):
            left = self._expr_with_end(arg.left, end_src, local_vars)
            right = self._expr_with_end(arg.right, end_src, local_vars)
            if arg.op in _BINOP_FUNCS:
                return f"{_BINOP_FUNCS[arg.op]}({left}, {right})"
            if arg.op in _COMPARISONS:
                return f"_V.compare({arg.op!r}, {left}, {right})"
            raise TranslateError(f"'end' under operator {arg.op!r}")
        if isinstance(arg, UnOp):
            inner = self._expr_with_end(arg.operand, end_src, local_vars)
            return f"_V.negate({inner})" if arg.op == "-" else inner
        if isinstance(arg, Range):
            lo = self._expr_with_end(arg.start, end_src, local_vars)
            hi = self._expr_with_end(arg.stop, end_src, local_vars)
            step = self._expr_with_end(arg.step, end_src, local_vars) \
                if arg.step is not None else "1.0"
            return (f"_colon(_V.as_scalar({lo}), _V.as_scalar({step}), "
                    f"_V.as_scalar({hi}))")
        return self._expr(arg, local_vars)


class _FunctionTranslator:
    """Emit a function body sharing the parent translator's tables."""

    def __init__(self, parent: Translator, fn: FunctionDef):
        self.parent = parent
        self.fn = fn
        self.locals = parent._function_locals(fn)

    def emit_body(self, emitter: _Emitter) -> None:
        body = [s for s in self.fn.body]
        self.parent._emit_block(emitter, body, 3, self.locals)


def translate_program(program: Program,
                      extra_variables: Iterable[str] = ()) -> TranslationUnit:
    """Translate a parsed program to Python source."""
    return Translator(program, extra_variables).translate()


def translate_source(source: str,
                     extra_variables: Iterable[str] = ()) -> TranslationUnit:
    """Translate MATLAB source text to Python source."""
    return translate_program(parse(source), extra_variables)


def compile_source(source: str,
                   extra_variables: Iterable[str] = ()) -> Callable[..., dict]:
    """Translate and compile MATLAB source; returns ``fn(env, seed) -> dict``."""
    return translate_source(source, extra_variables).compile()
