"""MATLAB → Python/NumPy transpiler."""
