"""The flow-sensitive shape-inference engine — single source of shape
truth for the whole pipeline.

The paper assumes array shapes arrive via ``%!`` annotations produced
by external tools (§2, refs [5, 18]).  This package is our substitute
for those tools *and* the one place shape facts are computed:

* the **vectorizer driver** consumes per-statement shape environments
  (:func:`analyze_program` / :meth:`ProgramShapes.env_at`) — annotations
  stay frozen/authoritative, inference fills the gaps so annotation-free
  programs vectorize;
* the **linter** re-expresses its E301–E303 shape diagnostics on the
  same propagation (:func:`check_shapes`);
* the **auditor** re-derives dims over emitted code with the same
  expression evaluator (:func:`expr_dim`);
* the **service** keys cached artifacts on :data:`ENGINE_VERSION` (via
  the pipeline fingerprint) so a lattice change invalidates stale
  results.

Propagation runs on the :mod:`repro.staticcheck` CFG + worklist solver
over the dims lattice, with per-``function`` interprocedural summaries
(:class:`~repro.shapes.summaries.FunctionSummaries`) memoized per call
signature.
"""

from .engine import (
    CONFLICT,
    ELEMENTWISE_OPS,
    ENGINE_VERSION,
    ProgramShapes,
    ShapeFact,
    ShapeFacts,
    ShapePropagation,
    analyze_program,
    check_shapes,
    entry_defined,
    expr_dim,
    facts_env,
    fact_dim,
    infer_shapes,
    scope_annotations,
    scope_known_functions,
    shape_step,
)
from .summaries import FunctionSummaries

__all__ = [
    "CONFLICT",
    "ELEMENTWISE_OPS",
    "ENGINE_VERSION",
    "FunctionSummaries",
    "ProgramShapes",
    "ShapeFact",
    "ShapeFacts",
    "ShapePropagation",
    "analyze_program",
    "check_shapes",
    "entry_defined",
    "expr_dim",
    "facts_env",
    "fact_dim",
    "infer_shapes",
    "scope_annotations",
    "scope_known_functions",
    "shape_step",
]
