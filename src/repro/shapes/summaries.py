"""Interprocedural shape summaries: params → result dims per function.

A summary answers "given arguments of these abstract shapes, what
shapes do this ``function``'s outputs have?" by solving the function
body's CFG with the parameters bound at the boundary.  Results are
memoized per ``(function, argument dims)`` signature — the dims
lattice is tiny, so the memo stays small even across a whole corpus —
and a recursion guard returns "unknown" for self-referential
signatures instead of diverging.

Parameters are *bound*, not frozen: a function may legitimately
reassign a parameter to a different shape, and the propagation tracks
that.  ``%!`` annotations inside the function body remain frozen as
everywhere else.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..dims.abstract import Dim
from ..dims.context import ShapeEnv
from ..staticcheck.cfg import Scope

#: One summary: a Dim per declared output, None where unprovable.
ResultDims = tuple[Optional[Dim], ...]


class FunctionSummaries:
    """Memoized params → result dims summaries for a program's functions."""

    def __init__(self, scopes: Sequence[Scope],
                 functions: Optional[frozenset[str]] = None,
                 use_annotations: bool = True):
        self._scopes = {scope.name: scope for scope in scopes
                        if scope.kind == "function"}
        self.functions = functions if functions is not None \
            else frozenset(self._scopes)
        self.use_annotations = use_annotations
        self._memo: dict[tuple[str, tuple[Dim, ...]], ResultDims] = {}
        self._active: set[tuple[str, tuple[Dim, ...]]] = set()

    def defines(self, name: str) -> bool:
        """True when ``name`` is a program-defined function."""
        return name in self._scopes

    def result_dims(self, name: str,
                    arg_dims: tuple[Dim, ...]) -> Optional[ResultDims]:
        """Output dims of calling ``name`` with ``arg_dims``-shaped
        arguments, or None when the call cannot be summarized (unknown
        function, arity mismatch, recursion)."""
        from .engine import (
            ShapePropagation,
            facts_env,
            scope_annotations,
            scope_known_functions,
        )
        from ..staticcheck.dataflow import solve

        scope = self._scopes.get(name)
        if scope is None or len(arg_dims) != len(scope.params):
            return None
        key = (name, arg_dims)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if key in self._active:
            return None                     # recursive signature: unknown
        self._active.add(key)
        try:
            annotated = scope_annotations(scope) if self.use_annotations \
                else ShapeEnv()
            boundary = annotated.copy()
            for param, dim in zip(scope.params, arg_dims):
                boundary.set(param, dim)
            known = scope_known_functions(scope, self.functions)
            solution = solve(scope.cfg,
                             ShapePropagation(scope, annotated, known,
                                              summaries=self,
                                              boundary_env=boundary))
            exit_value = solution.before[scope.cfg.exit]
            exit_env = facts_env(exit_value) if exit_value is not None \
                else ShapeEnv()
            result: ResultDims = tuple(exit_env.get(out)
                                       for out in scope.outs)
        finally:
            self._active.discard(key)
        self._memo[key] = result
        return result
