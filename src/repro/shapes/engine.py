"""Flow-sensitive shape propagation on the dims lattice.

One abstract domain serves every consumer: a *shape fact* per variable
is either a :class:`~repro.dims.abstract.Dim` (the shape is that
constant at this program point) or :data:`CONFLICT` (defined, shape not
constant — the lattice bottom for that name).  Absence from the fact
map means the name is not defined on any path reaching the point.

The meet is optimistic for one-sided names (a name defined on only one
incoming path keeps its shape — MATLAB workspaces persist, and the
auto-creation rules below rely on it) and drops to :data:`CONFLICT`
when two paths disagree.  That is exactly the join-point conservatism
the vectorizer needs: a variable whose shape differs across an
``if``/``else`` merge (or fails to stabilize around a ``while`` back
edge) is projected out of the :class:`~repro.dims.context.ShapeEnv`,
the dim checker cannot prove the statement's shapes, and the loop
stays sequential; the linter reports the same conflict as E301–E303.

Annotated names are *frozen*: ``%!`` annotations are authoritative and
inference never overrides them (assignments that provably disagree are
reported as E302).

MATLAB auto-creation is honoured on subscripted first writes:
``a(i) = …`` creates a row ``(1,*)``, ``A(i,j) = …`` an all-``*``
array of the subscript arity.

Calls to program-defined ``function``\\ s resolve through
:class:`~repro.shapes.summaries.FunctionSummaries` — params → result
dims, memoized per call signature — so shapes flow interprocedurally
without per-call-site annotations.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from ..dims.abstract import STAR, Dim
from ..dims.context import KNOWN_FUNCTIONS, ShapeEnv
from ..mlang.annotations import annotations_env, parse_annotations
from ..mlang.ast_nodes import (
    Apply,
    Assign,
    BinOp,
    Colon,
    End,
    Expr,
    For,
    FunctionDef,
    Global,
    Ident,
    MultiAssign,
    Program,
    Range,
)
from ..staticcheck.cfg import Block, Scope, Unit, assigned_names, program_scopes
from ..staticcheck.dataflow import Analysis, Solution, solve
from ..staticcheck.diagnostics import Diagnostic
from .summaries import FunctionSummaries

#: Bumped whenever the lattice, transfer functions, or summary format
#: changes meaning.  The service folds this into the pipeline
#: fingerprint so cached artifacts from an older engine are never
#: served (see :mod:`repro.service.fingerprint`).
ENGINE_VERSION = 2


class _Conflict:
    """Lattice bottom for one variable: defined, shape not constant."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<conflict>"


CONFLICT = _Conflict()

ShapeFact = Union[Dim, _Conflict]
ShapeFacts = dict[str, ShapeFact]

#: Pointwise binary operators (Table 1 row: elementwise ops need
#: compatible dimensionalities; scalars extend).
ELEMENTWISE_OPS = frozenset({
    "+", "-", ".*", "./", ".\\", ".^",
    "==", "~=", "<", ">", "<=", ">=", "&", "|",
})


# ---------------------------------------------------------------------------
# Scope-level helpers (annotation collection, known functions)
# ---------------------------------------------------------------------------


def scope_known_functions(scope: Scope,
                          functions: frozenset[str] = frozenset()
                          ) -> frozenset[str]:
    """Names acting as functions in this scope — the builtins plus any
    program-defined ``function`` names, minus names the scope assigns
    (shadowing)."""
    shadowed = assigned_names(scope.body) | set(scope.params)
    return frozenset((KNOWN_FUNCTIONS | functions) - shadowed)


def scope_annotations(scope: Scope) -> ShapeEnv:
    """The shape environment declared by ``%!`` annotations in the
    scope (malformed annotations are skipped here; the linter reports
    them as E003 separately)."""
    return annotations_env(scope.body)


def entry_defined(scope: Scope, annotated: ShapeEnv) -> frozenset[str]:
    """Names defined before the scope's first statement runs: function
    parameters, ``global`` names, and annotated inputs."""
    names = set(scope.params) | set(annotated.shapes)
    for stmt in scope.body:
        for node in stmt.walk():
            if isinstance(node, Global):
                names.update(node.names)
    return frozenset(names)


# ---------------------------------------------------------------------------
# Expression evaluation on the dims lattice
# ---------------------------------------------------------------------------


def expr_dim(expr: Expr, env: ShapeEnv,
             loop_vars: frozenset[str] = frozenset()) -> Optional[Dim]:
    """The abstract dims of a straight-line expression under ``env``
    (``loop_vars`` are enclosing sequential indices, i.e. scalars), or
    ``None`` when the shape cannot be proved."""
    from ..patterns.database import PatternDatabase
    from ..vectorizer.checker import CheckFailure, CheckOptions, DimChecker

    checker = DimChecker(
        env, headers=[], sequential_vars=tuple(loop_vars),
        db=PatternDatabase(), options=CheckOptions(patterns=False),
    )
    try:
        return checker.check_expr(expr).dim
    except CheckFailure:
        return None


def facts_env(facts: ShapeFacts) -> ShapeEnv:
    """Project a fact map onto a :class:`ShapeEnv`: names in conflict
    are dropped (unknown to the dim checker — the conservatism that
    keeps merge-tainted statements sequential)."""
    return ShapeEnv({name: dim for name, dim in facts.items()
                     if isinstance(dim, Dim)})


def fact_dim(expr: Expr, facts: ShapeFacts,
             loop_vars: frozenset[str]) -> Optional[Dim]:
    """Abstract dims of ``expr`` under the current facts, or None."""
    return expr_dim(expr, facts_env(facts), loop_vars)


def _summary_call_dims(expr: Expr, facts: ShapeFacts,
                       loop_vars: frozenset[str],
                       summaries: Optional[FunctionSummaries]
                       ) -> Optional[tuple[Optional[Dim], ...]]:
    """Result dims when ``expr`` is a direct call to a program-defined
    function with provable argument shapes, else None."""
    if summaries is None or not isinstance(expr, Apply) \
            or not isinstance(expr.func, Ident) \
            or not summaries.defines(expr.func.name):
        return None
    arg_dims = []
    for arg in expr.args:
        dim = fact_dim(arg, facts, loop_vars)
        if dim is None:
            return None
        arg_dims.append(dim)
    return summaries.result_dims(expr.func.name, tuple(arg_dims))


# ---------------------------------------------------------------------------
# The transfer function
# ---------------------------------------------------------------------------


def shape_step(unit: Unit, facts: ShapeFacts, annotated: ShapeEnv,
               summaries: Optional[FunctionSummaries] = None,
               emit: Optional[Callable[[Diagnostic], None]] = None) -> None:
    """Advance ``facts`` over one unit, optionally emitting diagnostics.

    Mutates ``facts`` in place (transfer functions copy beforehand).
    """
    node = unit.node
    if unit.kind == "for" and isinstance(node, For):
        facts[node.var] = Dim.scalar()
        return
    if unit.kind == "global" and isinstance(node, Global):
        for name in node.names:
            facts.setdefault(name, CONFLICT)
        return
    if unit.kind == "multiassign" and isinstance(node, MultiAssign):
        _multiassign_step(node, facts, annotated, unit.loop_vars, summaries)
        return
    if unit.kind != "assign" or not isinstance(node, Assign):
        return

    if emit is not None:
        _emit_operand_conflicts(node, facts, unit, emit)

    rhs_dim: Optional[Dim] = None
    summary = _summary_call_dims(node.rhs, facts, unit.loop_vars, summaries)
    if summary is not None and len(summary) == 1:
        rhs_dim = summary[0]
    if rhs_dim is None:
        rhs_dim = fact_dim(node.rhs, facts, unit.loop_vars)
    lhs = node.lhs
    if isinstance(lhs, Ident):
        name = lhs.name
        if name in annotated:
            # Orientation-only mismatches (row vs column) are forgiven:
            # the pipeline transposes freely and linear indexing works
            # for either, so only rank/extent conflicts are real bugs.
            if (emit is not None and rhs_dim is not None
                    and rhs_dim.reduce() != annotated.shapes[name].reduce()
                    and rhs_dim.reverse().reduce()
                    != annotated.shapes[name].reduce()):
                emit(Diagnostic(
                    "E302",
                    f"assignment of shape {rhs_dim} to '{name}' conflicts "
                    f"with its annotation {annotated.shapes[name]}",
                    unit.pos.line, unit.pos.column,
                    f"update the %! annotation for '{name}' or fix the "
                    f"right-hand side"))
            facts[name] = annotated.shapes[name]
        elif name in unit.loop_vars:
            facts[name] = Dim.scalar()
        else:
            facts[name] = rhs_dim if rhs_dim is not None else CONFLICT
        return
    if isinstance(lhs, Apply) and isinstance(lhs.func, Ident):
        name = lhs.func.name
        if emit is not None and rhs_dim is not None \
                and not rhs_dim.is_scalar \
                and _all_scalar_subscripts(lhs, facts, unit.loop_vars):
            emit(Diagnostic(
                "E303",
                f"assignment of a non-scalar value (shape {rhs_dim}) to "
                f"the single element '{name}"
                f"({', '.join('…' for _ in lhs.args)})'",
                unit.pos.line, unit.pos.column,
                "index a matching slice on the left or reduce the "
                "right-hand side to a scalar"))
        if name not in facts and name not in annotated:
            # MATLAB auto-creation on a subscripted first write.
            if len(lhs.args) == 1:
                facts[name] = Dim.row()
            else:
                facts[name] = Dim(tuple(STAR for _ in lhs.args))


def _multiassign_step(node: MultiAssign, facts: ShapeFacts,
                      annotated: ShapeEnv, loop_vars: frozenset[str],
                      summaries: Optional[FunctionSummaries]) -> None:
    rhs = node.rhs
    name = rhs.func.name if (isinstance(rhs, Apply)
                             and isinstance(rhs.func, Ident)) else None
    targets = [t.name for t in node.targets if isinstance(t, Ident)]

    def assign(target: str, dim: Optional[Dim]) -> None:
        # Annotations stay authoritative for multi-assign targets too.
        if target in annotated:
            facts[target] = annotated.shapes[target]
        else:
            facts[target] = dim if dim is not None else CONFLICT

    summary = _summary_call_dims(rhs, facts, loop_vars, summaries)
    if summary is not None:
        for index, target in enumerate(targets):
            assign(target, summary[index] if index < len(summary) else None)
        return
    if name == "size" or (name in ("max", "min")
                          and isinstance(rhs, Apply) and len(rhs.args) == 1):
        for target in targets:
            assign(target, Dim.scalar())
    elif name == "sort" and isinstance(rhs, Apply) and len(rhs.args) == 1:
        dim = fact_dim(rhs.args[0], facts, loop_vars)
        for target in targets:
            assign(target, dim)
    else:
        for target in targets:
            assign(target, None)


def _all_scalar_subscripts(lhs: Apply, facts: ShapeFacts,
                           loop_vars: frozenset[str]) -> bool:
    for arg in lhs.args:
        if isinstance(arg, (Colon, End, Range)):
            return False
        dim = fact_dim(arg, facts, loop_vars)
        if dim is None or not dim.is_scalar:
            return False
    return True


def _emit_operand_conflicts(stmt: Assign, facts: ShapeFacts, unit: Unit,
                            emit: Callable[[Diagnostic], None]) -> None:
    """E301: elementwise operands with provably different shapes."""
    for node in stmt.rhs.walk():
        if not (isinstance(node, BinOp) and node.op in ELEMENTWISE_OPS):
            continue
        left = fact_dim(node.left, facts, unit.loop_vars)
        right = fact_dim(node.right, facts, unit.loop_vars)
        if left is None or right is None:
            continue
        if left.is_scalar or right.is_scalar:
            continue
        if left.reduce() != right.reduce():
            pos = node.pos if node.pos.line else unit.pos
            emit(Diagnostic(
                "E301",
                f"operands of '{node.op}' have incompatible shapes "
                f"{left} and {right}",
                pos.line, pos.column,
                "transpose one operand or index a matching slice"))


# ---------------------------------------------------------------------------
# The dataflow analysis
# ---------------------------------------------------------------------------


class ShapePropagation(Analysis[ShapeFacts]):
    """Forward constant propagation of abstract dimensionalities.

    ``annotated`` names are frozen; ``boundary_env`` (defaulting to the
    annotations) seeds the entry facts — function summaries bind params
    there without freezing them.
    """

    direction = "forward"

    def __init__(self, scope: Scope, annotated: ShapeEnv,
                 known: frozenset[str],
                 summaries: Optional[FunctionSummaries] = None,
                 boundary_env: Optional[ShapeEnv] = None):
        self.scope = scope
        self.annotated = annotated
        self.known = known
        self.summaries = summaries
        self.boundary_env = boundary_env if boundary_env is not None \
            else annotated

    def boundary(self) -> ShapeFacts:
        return dict(self.boundary_env.shapes)

    def meet(self, left: ShapeFacts, right: ShapeFacts) -> ShapeFacts:
        merged: ShapeFacts = {}
        for name in set(left) | set(right):
            if name in left and name in right:
                merged[name] = (left[name] if left[name] == right[name]
                                else CONFLICT)
            else:
                merged[name] = left.get(name, right.get(name, CONFLICT))
        return merged

    def transfer(self, block: Block, value: ShapeFacts) -> ShapeFacts:
        facts = dict(value)
        for unit in block.units:
            shape_step(unit, facts, self.annotated, self.summaries)
        return facts


# ---------------------------------------------------------------------------
# Linter entry point
# ---------------------------------------------------------------------------


def check_shapes(scope: Scope,
                 summaries: Optional[FunctionSummaries] = None,
                 functions: frozenset[str] = frozenset()
                 ) -> list[Diagnostic]:
    """E301/E302/E303 over one scope via shape propagation."""
    known = scope_known_functions(scope, functions)
    annotated = scope_annotations(scope)
    cfg = scope.cfg
    solution = solve(cfg, ShapePropagation(scope, annotated, known,
                                           summaries))

    out: list[Diagnostic] = []
    seen: set[tuple[str, str, int, int]] = set()

    def emit(diag: Diagnostic) -> None:
        key = (diag.code, diag.message, diag.line, diag.column)
        if key not in seen:
            seen.add(key)
            out.append(diag)

    for block in cfg.blocks:
        facts_value = solution.before[block.id]
        if facts_value is None:
            continue
        facts = dict(facts_value)
        for unit in block.units:
            shape_step(unit, facts, annotated, summaries, emit)
    return out


# ---------------------------------------------------------------------------
# Per-statement environments for the vectorizer
# ---------------------------------------------------------------------------


class ProgramShapes:
    """Fixpoint shape environments for every statement of a program.

    :meth:`env_at` answers "what shapes are provable just before this
    statement executes?" — for a ``for`` loop that is the header's
    entry facts *at the fixpoint*, so arrays auto-created inside the
    body are visible (via the back edge) while merge conflicts are
    projected out.  Nodes rebuilt by pre-codegen rewrites (scalar-temp
    substitution preserves source positions) resolve through the
    position index; anything unresolvable falls back to the script
    scope's exit environment, which is also the whole-program summary
    :func:`infer_shapes` returns.
    """

    def __init__(self, program: Program, annotations: ShapeEnv,
                 summaries: FunctionSummaries):
        self.program = program
        self.annotations = annotations
        self.summaries = summaries
        self.scope_envs: dict[str, ShapeEnv] = {}
        self._by_id: dict[int, ShapeEnv] = {}
        self._by_pos: dict[tuple[int, int], ShapeEnv] = {}
        self.script_env = ShapeEnv()

    def env_at(self, node) -> ShapeEnv:
        """The provable shape environment just before ``node`` runs."""
        env = self._by_id.get(id(node))
        if env is None:
            pos = getattr(node, "pos", None)
            if pos is not None and pos.line:
                env = self._by_pos.get((pos.line, pos.column))
        return env if env is not None else self.script_env

    # -- construction ----------------------------------------------------

    def _record_scope(self, scope: Scope, annotated: ShapeEnv,
                      known: frozenset[str],
                      boundary_env: Optional[ShapeEnv] = None) -> ShapeEnv:
        analysis = ShapePropagation(scope, annotated, known,
                                    self.summaries, boundary_env)
        solution: Solution[ShapeFacts] = solve(scope.cfg, analysis)
        for block in scope.cfg.blocks:
            value = solution.before[block.id]
            if value is None:
                continue
            facts = dict(value)
            for unit in block.units:
                env = facts_env(facts)
                self._by_id[id(unit.node)] = env
                if unit.pos.line:
                    self._by_pos.setdefault((unit.pos.line, unit.pos.column),
                                            env)
                shape_step(unit, facts, annotated, self.summaries)
        exit_value = solution.before[scope.cfg.exit]
        exit_env = facts_env(exit_value) if exit_value is not None \
            else ShapeEnv()
        self.scope_envs[scope.name] = exit_env
        return exit_env


def analyze_program(program: Program,
                    annotations: Optional[ShapeEnv] = None,
                    use_annotations: bool = True) -> ProgramShapes:
    """Run the engine over a whole program.

    ``annotations`` overrides annotation collection (the driver merges
    externally supplied shapes there); with ``use_annotations=False``
    and no explicit environment, ``%!`` annotations are ignored and
    every shape must be inferred.
    """
    if annotations is None:
        annotations = parse_annotations(program.annotations) \
            if use_annotations else ShapeEnv()
    scopes = program_scopes(program)
    functions = frozenset(s.name for s in program.body
                          if isinstance(s, FunctionDef))
    summaries = FunctionSummaries(scopes, functions,
                                  use_annotations=use_annotations)
    shapes = ProgramShapes(program, annotations, summaries)
    for scope in scopes:
        known = scope_known_functions(scope, functions)
        if scope.kind == "script":
            # The vectorizer historically merges every %! annotation in
            # the program into the script environment; preserve that.
            shapes.script_env = shapes._record_scope(scope, annotations,
                                                     known)
        else:
            annotated = scope_annotations(scope) if use_annotations \
                else ShapeEnv()
            shapes._record_scope(scope, annotated, known)
    return shapes


def infer_shapes(program: Program,
                 annotations_env: Optional[ShapeEnv] = None) -> ShapeEnv:
    """Whole-program shape summary: the script scope's exit environment
    under the engine's fixpoint, seeded with (frozen) annotations."""
    annotations = annotations_env.copy() if annotations_env is not None \
        else parse_annotations(program.annotations)
    return analyze_program(program, annotations).script_env
