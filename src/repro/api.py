"""``repro.api`` — the one-stop Python facade over the toolchain.

Everything the CLI, the serving front ends, and embedders need, behind
five functions returning **frozen** result objects::

    from repro import api

    out = api.vectorize("for i=1:n\\n  z(i) = x(i) + y(i);\\nend")
    out.ok, out.vectorized, out.cached

    api.translate(src).python          # NumPy translation
    api.lint(src).diagnostics          # static diagnostics (data)
    api.audit(src).ok                  # independent legality audit
    api.compile_many([("a.m", src)])   # parallel batch, input order

All entry points route through one shared, cached
:class:`~repro.service.compiler.CompilationService` (override with the
``service=`` keyword for isolation — tests do), so repeated calls on
the same source hit the content-addressed cache no matter which entry
point made the first one.  Nothing here raises on *bad input*: every
outcome is a result object with ``ok`` and a structured ``error``.
Programming errors (bad option names, unknown backends) still raise.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from .service.compiler import CompilationService, CompileResult
from .service.fingerprint import CompileOptions

__all__ = [
    "ApiError",
    "AuditReport",
    "CompileOutcome",
    "CompileOptions",
    "FanoutReport",
    "LintReport",
    "audit",
    "compile_many",
    "default_service",
    "fanout",
    "lint",
    "options",
    "reset_default_service",
    "translate",
    "vectorize",
]


# ---------------------------------------------------------------------------
# Result types (frozen: results are facts, not scratch space)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ApiError:
    """A structured failure (compile error, timeout, crashed worker)."""

    type: str
    message: str

    def __str__(self) -> str:
        return f"{self.type}: {self.message}"


@dataclass(frozen=True)
class CompileOutcome:
    """Outcome of one :func:`vectorize`/:func:`translate` call."""

    name: str
    ok: bool
    cached: bool = False
    cache_key: Optional[str] = None
    vectorized: Optional[str] = None
    python: Optional[str] = None
    stats: Optional[Mapping] = None
    report_summary: Optional[str] = None
    timings: Mapping[str, float] = field(default_factory=dict)
    elapsed: float = 0.0
    error: Optional[ApiError] = None

    @classmethod
    def from_result(cls, result: CompileResult) -> "CompileOutcome":
        return cls(
            name=result.name, ok=result.ok, cached=result.cached,
            cache_key=result.cache_key, vectorized=result.vectorized,
            python=result.python, stats=result.stats,
            report_summary=result.report_summary,
            timings=dict(result.timings), elapsed=result.elapsed,
            error=ApiError(result.error.type, result.error.message)
            if result.error else None)

    def to_dict(self) -> dict:
        return {
            "name": self.name, "ok": self.ok, "cached": self.cached,
            "cache_key": self.cache_key, "vectorized": self.vectorized,
            "python": self.python, "stats": self.stats,
            "report_summary": self.report_summary,
            "timings": dict(self.timings), "elapsed": self.elapsed,
            "error": {"type": self.error.type,
                      "message": self.error.message}
            if self.error else None,
        }


@dataclass(frozen=True)
class LintReport:
    """Outcome of one :func:`lint` call.  Diagnostics are data — a
    lint that *finds* errors is still a successful lint."""

    file: str
    errors: int
    warnings: int
    diagnostics: tuple[Mapping, ...] = ()
    cached: bool = False

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    @property
    def ok(self) -> bool:
        """No error-severity findings (warnings alone pass)."""
        return self.errors == 0

    def to_dict(self) -> dict:
        return {"file": self.file, "errors": self.errors,
                "warnings": self.warnings,
                "diagnostics": [dict(d) for d in self.diagnostics],
                "cached": self.cached}

    def render(self) -> str:
        """Human-readable report, matching ``mvec lint`` output."""
        lines = []
        for diag in self.diagnostics:
            head = (f"{self.file}:{diag['line']}:{diag['column']}: "
                    f"{diag['severity']}[{diag['code']}]: "
                    f"{diag['message']}")
            if diag.get("hint"):
                head += f"\n    hint: {diag['hint']}"
            lines.append(head)
        lines.append(f"{self.file}: {self.errors} error(s), "
                     f"{self.warnings} warning(s)")
        return "\n".join(lines)


@dataclass(frozen=True)
class AuditReport:
    """Outcome of one :func:`audit` call (compile + legality audit)."""

    file: str
    ok: bool
    cached: bool = False
    audited_loops: int = 0
    audited_stmts: int = 0
    vectorized_stmts: int = 0
    diagnostics: tuple[Mapping, ...] = ()
    error: Optional[ApiError] = None

    def to_dict(self) -> dict:
        return {"file": self.file, "ok": self.ok, "cached": self.cached,
                "audited_loops": self.audited_loops,
                "audited_stmts": self.audited_stmts,
                "vectorized_stmts": self.vectorized_stmts,
                "diagnostics": [dict(d) for d in self.diagnostics],
                "error": {"type": self.error.type,
                          "message": self.error.message}
                if self.error else None}


@dataclass(frozen=True)
class FanoutReport:
    """Outcome of one :func:`fanout` call: per-backend payload map."""

    ok: bool
    results: Mapping[str, Mapping] = field(default_factory=dict)
    statuses: Mapping[str, int] = field(default_factory=dict)

    def __getitem__(self, backend: str) -> Mapping:
        return self.results[backend]


# ---------------------------------------------------------------------------
# The shared default service
# ---------------------------------------------------------------------------

_default_service: Optional[CompilationService] = None
_default_service_lock = threading.Lock()


def default_service() -> CompilationService:
    """The process-wide service every facade call shares by default."""
    global _default_service
    if _default_service is None:
        with _default_service_lock:
            if _default_service is None:
                _default_service = CompilationService()
    return _default_service


def reset_default_service() -> None:
    """Drop the shared service (tests; config changes)."""
    global _default_service
    with _default_service_lock:
        _default_service = None


def options(**kwargs) -> CompileOptions:
    """Build :class:`CompileOptions`; raises on unknown option names."""
    return CompileOptions(**kwargs)


def _pin_backend(opts: Optional[CompileOptions],
                 backend: str) -> CompileOptions:
    opts = opts or CompileOptions()
    if opts.backend != backend:
        opts = CompileOptions(**{**opts.to_dict(), "backend": backend})
    return opts


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def vectorize(source: str, *, options: Optional[CompileOptions] = None,
              name: str = "<memory>",
              service: Optional[CompilationService] = None
              ) -> CompileOutcome:
    """Vectorize one MATLAB source (the paper's pipeline, cached)."""
    service = service or default_service()
    result = service.compile(source, _pin_backend(options, "matlab"),
                             name=name)
    return CompileOutcome.from_result(result)


def translate(source: str, *, options: Optional[CompileOptions] = None,
              name: str = "<memory>",
              service: Optional[CompilationService] = None
              ) -> CompileOutcome:
    """Vectorize, then translate to NumPy Python (``.python``)."""
    service = service or default_service()
    result = service.compile(source, _pin_backend(options, "numpy"),
                             name=name)
    return CompileOutcome.from_result(result)


def lint(source: str, *, name: str = "<memory>",
         service: Optional[CompilationService] = None) -> LintReport:
    """Static diagnostics over one source (cached)."""
    service = service or default_service()
    payload = service.lint(source, name=name)
    return LintReport(
        file=payload.get("file", name),
        errors=payload.get("errors", 0),
        warnings=payload.get("warnings", 0),
        diagnostics=tuple(payload.get("diagnostics") or ()),
        cached=bool(payload.get("cached")))


def audit(source: str, *, options: Optional[CompileOptions] = None,
          name: str = "<memory>",
          service: Optional[CompilationService] = None) -> AuditReport:
    """Compile one source and independently audit the emitted code."""
    service = service or default_service()
    payload = service.audit(source, options, name=name)
    error = payload.get("error")
    return AuditReport(
        file=payload.get("file", name),
        ok=bool(payload.get("ok")),
        cached=bool(payload.get("cached")),
        audited_loops=payload.get("audited_loops", 0),
        audited_stmts=payload.get("audited_stmts", 0),
        vectorized_stmts=payload.get("vectorized_stmts", 0),
        diagnostics=tuple(payload.get("diagnostics") or ()),
        error=ApiError(error["type"], error["message"]) if error else None)


def compile_many(sources: Sequence[tuple[str, str]], *,
                 options: Optional[CompileOptions] = None,
                 workers: int = 1,
                 timeout: Optional[float] = None,
                 cache_dir=None) -> tuple[CompileOutcome, ...]:
    """Compile ``(name, source)`` pairs in parallel, input order.

    Error-isolated: a file that fails (or times out) yields a failed
    outcome, never a dead batch.
    """
    from .service.compiler import compile_many as _compile_many

    results = _compile_many(sources, options=options, workers=workers,
                            timeout=timeout, cache_dir=cache_dir)
    return tuple(CompileOutcome.from_result(r) for r in results)


def fanout(source: str, *, options: Optional[CompileOptions] = None,
           backends: Optional[Sequence[str]] = None,
           service: Optional[CompilationService] = None) -> FanoutReport:
    """Run one source against several backends concurrently."""
    from .service.backends import fanout_sync

    service = service or default_service()
    outcome = fanout_sync(service, source, options, backends)
    return FanoutReport(
        ok=outcome.ok,
        results={name: payload for name, (_s, payload)
                 in outcome.results.items()},
        statuses={name: status for name, (status, _p)
                  in outcome.results.items()})
